#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace soi {
namespace obs {

namespace internal_metrics {

namespace {
std::atomic<int> next_thread_slot{0};
}  // namespace

int ThreadShard() {
  thread_local int slot =
      next_thread_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return slot;
}

}  // namespace internal_metrics

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal_metrics::CounterShard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

const std::vector<double>& DefaultLatencyBounds() {
  // 1-2-5 ladder, 1us .. 50s; the overflow bucket catches the rest.
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double decade = 1e-6; decade < 99.0; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(2 * decade);
      bounds.push_back(5 * decade);
    }
    while (bounds.back() > 99.0) bounds.pop_back();
    return bounds;
  }();
  return kBounds;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  SOI_CHECK(!bounds_.empty()) << "histogram needs at least one bound";
  SOI_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (Shard& shard : shards_) shard.Init(bounds_.size() + 1);
  exemplars_.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
  for (size_t i = 0; i <= bounds_.size(); ++i) exemplars_[i].store(0);
}

void Histogram::ObserveImpl(double value, uint64_t exemplar_query_id) {
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[internal_metrics::ThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + value,
                                          std::memory_order_relaxed)) {
  }
  if (exemplar_query_id != 0) {
    exemplars_[bucket].store(exemplar_query_id, std::memory_order_relaxed);
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snapshot;
  snapshot.name = name_;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snapshot.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (int64_t count : snapshot.counts) snapshot.total_count += count;
  snapshot.exemplars.resize(bounds_.size() + 1, 0);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snapshot.exemplars[i] = exemplars_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (total_count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    int64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Observations beyond the last finite bound clamp to it.
      if (i >= bounds.size()) return bounds.back();
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + within * (hi - lo);
    }
    cumulative = next;
  }
  return bounds.back();
}

uint64_t Histogram::Snapshot::ExemplarForQuantile(double q) const {
  if (total_count <= 0 || exemplars.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total_count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target) return exemplars[i];
  }
  return exemplars.back();
}

Histogram::Snapshot Histogram::Snapshot::Since(
    const Snapshot& earlier) const {
  SOI_CHECK(bounds == earlier.bounds)
      << "Histogram::Snapshot::Since: '" << name << "' and '"
      << earlier.name << "' have different bounds";
  Snapshot delta = *this;
  delta.total_count = 0;
  for (size_t i = 0; i < delta.counts.size(); ++i) {
    delta.counts[i] -= earlier.counts[i];
    if (delta.counts[i] < 0) {
      delta.counts[i] = 0;
      delta.clamped = true;
    }
    delta.total_count += delta.counts[i];
  }
  delta.sum -= earlier.sum;
  if (delta.sum < 0.0) {
    delta.sum = 0.0;
    delta.clamped = true;
  }
  // Exemplars are levels (the most recent stamp), not sums: keep this
  // snapshot's.
  return delta;
}

int64_t MetricsSnapshot::CounterOr0(const std::string& name) const {
  for (const CounterValue& counter : counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

const Histogram::Snapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const Histogram::Snapshot& histogram : histograms) {
    if (histogram.name == name) return &histogram;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::Since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (CounterValue& counter : delta.counters) {
    counter.value -= earlier.CounterOr0(counter.name);
    // A later snapshot below an earlier one means the registry was
    // Reset() (or otherwise re-used) between the two: clamp and flag
    // instead of reporting a negative "delta" downstream.
    if (counter.value < 0) {
      counter.value = 0;
      delta.clamped = true;
    }
  }
  for (Histogram::Snapshot& histogram : delta.histograms) {
    const Histogram::Snapshot* base = earlier.FindHistogram(histogram.name);
    if (base == nullptr || base->bounds != histogram.bounds) continue;
    histogram = histogram.Since(*base);
    if (histogram.clamped) delta.clamped = true;
  }
  return delta;
}

Registry& Registry::Global() {
  // Leaked on purpose: instrumentation in static destructors of other
  // translation units may still write during shutdown.
  // soi-lint: naked-new (intentionally leaked singleton)
  static Registry* const global = new Registry();
  return *global;
}

Counter* Registry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  SOI_CHECK(gauges_.find(name) == gauges_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  SOI_CHECK(counters_.find(name) == counters_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name))).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  {
    // Bounds-agnostic lookup: an existing histogram is returned whatever
    // its bounds (only the explicit-bounds overload asserts agreement).
    MutexLock lock(mutex_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second.get();
  }
  return GetHistogram(name, DefaultLatencyBounds());
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  MutexLock lock(mutex_);
  SOI_CHECK(counters_.find(name) == counters_.end() &&
            gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(
                                new Histogram(name, std::move(bounds))))
             .first;
  } else {
    SOI_CHECK(it->second->bounds() == bounds)
        << "histogram '" << name << "' re-registered with different bounds";
  }
  return it->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Snap());
  }
  return snapshot;
}

void Registry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    for (internal_metrics::CounterShard& shard : counter->shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, gauge] : gauges_) gauge->Set(0);
  for (auto& [name, histogram] : histograms_) {
    for (Histogram::Shard& shard : histogram->shards_) {
      for (size_t i = 0; i <= histogram->bounds_.size(); ++i) {
        shard.counts[i].store(0, std::memory_order_relaxed);
      }
      shard.sum.store(0.0, std::memory_order_relaxed);
    }
    for (size_t i = 0; i <= histogram->bounds_.size(); ++i) {
      histogram->exemplars_[i].store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace soi
