#ifndef SOI_OBS_TRACE_H_
#define SOI_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace soi {
namespace obs {

/// One completed span: a named begin/end interval on one thread.
/// `name` must be a string literal (spans are recorded by pointer; no
/// allocation on the hot path).
struct TraceEvent {
  const char* name = nullptr;
  /// Nanoseconds since the recorder was started.
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  /// Small stable id assigned per recording thread (0, 1, ...).
  int32_t thread_id = 0;
  /// Span nesting depth on its thread at begin time (0 = outermost).
  int32_t depth = 0;
};

/// Collects spans into fixed-capacity per-thread ring buffers while a
/// recording session is active, and exports them as Chrome trace_event
/// JSON (load chrome://tracing or https://ui.perfetto.dev).
///
/// Lifecycle: Start(capacity) arms recording and clears previous events;
/// Stop() disarms (buffers stay readable); Collect()/ExportChromeJson()
/// read back. Spans opened while recording is off cost two relaxed loads
/// and record nothing. When a thread's ring fills, its oldest events are
/// overwritten and counted in dropped().
///
/// Thread-safe; span recording takes only the recording thread's own
/// buffer mutex (uncontended except against a concurrent Collect).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder that SOI_TRACE_SPAN writes to.
  static TraceRecorder& Global();

  /// Arms recording with `events_per_thread` ring slots per thread and
  /// clears previously collected events. Restarting while active is
  /// allowed (in-flight spans whose begin predates the restart are
  /// dropped on end).
  void Start(size_t events_per_thread = 1 << 14) SOI_EXCLUDES(mutex_);

  /// Disarms recording. Spans currently open complete without recording.
  void Stop();

  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// All recorded events, sorted by start time (ties: deeper span last so
  /// parents order before their children).
  std::vector<TraceEvent> Collect() const SOI_EXCLUDES(mutex_);

  /// Events overwritten because a per-thread ring filled.
  int64_t dropped() const SOI_EXCLUDES(mutex_);

  /// Writes the events as a Chrome trace_event JSON document
  /// ({"traceEvents": [...]}, complete "X" events, microsecond units).
  void ExportChromeJson(std::ostream* out) const;

  /// ExportChromeJson to a file.
  [[nodiscard]] Status WriteChromeTrace(const std::string& path) const;

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    mutable Mutex mutex{"obs.TraceRecorder.ring", lock_graph::kRankLeaf};
    // Assigned once at registration (under the recorder's mutex_), then
    // read-only; not guarded.
    int32_t thread_id = 0;
    std::vector<TraceEvent> ring SOI_GUARDED_BY(mutex);
    size_t next SOI_GUARDED_BY(mutex) = 0;   // next write position
    size_t count SOI_GUARDED_BY(mutex) = 0;  // live events (<= ring size)
    int64_t dropped SOI_GUARDED_BY(mutex) = 0;
    // Session the ring contents belong to.
    uint64_t session SOI_GUARDED_BY(mutex) = 0;
  };

  /// The calling thread's buffer, created and registered on first use.
  ThreadBuffer* LocalBuffer() SOI_EXCLUDES(mutex_);
  void Record(const char* name, int64_t start_ns, int64_t duration_ns,
              int32_t depth, uint64_t session);

  /// Nanoseconds since the current session's epoch.
  int64_t NowNs() const;

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> session_{0};
  std::atomic<int64_t> epoch_ns_{0};  // steady_clock epoch of the session
  std::atomic<size_t> capacity_{1 << 14};

  // Guards buffers_ registration/iteration; held across the per-buffer
  // ring locks in Collect(), hence the lower rank.
  mutable Mutex mutex_{"obs.TraceRecorder.buffers",
                       lock_graph::kRankObsOuter};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ SOI_GUARDED_BY(mutex_);
};

/// RAII span: records one TraceEvent on the global recorder from
/// construction to destruction, if a recording session is active at
/// construction time. Use through SOI_TRACE_SPAN (obs.h) so the span
/// compiles out entirely under SOI_OBSERVABILITY=OFF.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  int64_t start_ns_ = 0;
  uint64_t session_ = 0;
  int32_t depth_ = 0;
  bool recording_ = false;
};

}  // namespace obs
}  // namespace soi

#endif  // SOI_OBS_TRACE_H_
