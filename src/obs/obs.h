#ifndef SOI_OBS_OBS_H_
#define SOI_OBS_OBS_H_

/// The umbrella header instrumentation sites include: the SOI_OBS_*
/// macros write to the global metrics registry and SOI_TRACE_SPAN opens a
/// scoped span on the global trace recorder.
///
/// Compile-out contract: configuring with -DSOI_OBSERVABILITY=OFF defines
/// SOI_OBSERVABILITY_DISABLED, every macro below expands to nothing, and
/// instrumented code paths compile to exactly their un-instrumented form
/// (bit-identical results, no measurable slowdown — asserted by
/// tests/obs_determinism_test.cc against the pure sequential algorithm in
/// both build modes). The obs classes themselves (Registry, TraceRecorder,
/// ...) are compiled unconditionally and keep identical layouts in both
/// modes, so a translation unit built with the define links cleanly
/// against a library built without it (tests/obs_compile_out_test.cc).
///
/// Naming scheme (see DESIGN.md "Observability"): dot-separated
/// `soi.<subsystem>.<what>[_seconds]`, e.g. `soi.query.filter_seconds`,
/// `soi.cache.hits`, `soi.pool.queue_depth`. Span names mirror the
/// metric subsystem segment: "soi.query" > "soi.lists" / "soi.filter" /
/// "soi.refine", "cache.build_maps", "div.st_rel_div", ...

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifdef SOI_OBSERVABILITY_DISABLED
#define SOI_OBS_ENABLED 0
#else
#define SOI_OBS_ENABLED 1
#endif

namespace soi {
namespace obs {

/// True in builds with observability compiled in (the default). Prefer
/// the macros below for instrumentation; this constant is for tests and
/// for gating exporter output.
inline constexpr bool kEnabled = SOI_OBS_ENABLED != 0;

}  // namespace obs
}  // namespace soi

#define SOI_OBS_CONCAT_INNER_(a, b) a##b
#define SOI_OBS_CONCAT_(a, b) SOI_OBS_CONCAT_INNER_(a, b)

#if SOI_OBS_ENABLED

/// Records a scoped span named `name` (a string literal) from here to the
/// end of the enclosing block, when trace recording is active.
#define SOI_TRACE_SPAN(name)                                        \
  ::soi::obs::ScopedSpan SOI_OBS_CONCAT_(soi_obs_span_, __LINE__) { \
    name                                                            \
  }

/// Adds `delta` to the global counter `name`. The registry lookup runs
/// once per call site (function-local static); the add itself is a
/// wait-free sharded fetch_add.
#define SOI_OBS_COUNTER_ADD(name, delta)                            \
  do {                                                              \
    static ::soi::obs::Counter* const soi_obs_counter_ =            \
        ::soi::obs::Registry::Global().GetCounter(name);            \
    soi_obs_counter_->Add(delta);                                   \
  } while (false)

/// Adds `delta` to the global gauge `name` (use negative deltas to
/// decrement).
#define SOI_OBS_GAUGE_ADD(name, delta)                              \
  do {                                                              \
    static ::soi::obs::Gauge* const soi_obs_gauge_ =                \
        ::soi::obs::Registry::Global().GetGauge(name);              \
    soi_obs_gauge_->Add(delta);                                     \
  } while (false)

/// Sets the global gauge `name`.
#define SOI_OBS_GAUGE_SET(name, value)                              \
  do {                                                              \
    static ::soi::obs::Gauge* const soi_obs_gauge_ =                \
        ::soi::obs::Registry::Global().GetGauge(name);              \
    soi_obs_gauge_->Set(value);                                     \
  } while (false)

/// Observes `value` (seconds) in the global latency histogram `name`
/// (default 1us..50s exponential buckets).
#define SOI_OBS_HISTOGRAM_OBSERVE(name, value)                      \
  do {                                                              \
    static ::soi::obs::Histogram* const soi_obs_histogram_ =        \
        ::soi::obs::Registry::Global().GetHistogram(name);          \
    soi_obs_histogram_->Observe(value);                             \
  } while (false)

/// SOI_OBS_HISTOGRAM_OBSERVE plus an exemplar stamp: `query_id` (a
/// FlightRecorder query id; 0 = none) becomes the bucket's most recent
/// sample, linking the latency bucket to a replayable QueryRecord.
#define SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR(name, value, query_id)   \
  do {                                                              \
    static ::soi::obs::Histogram* const soi_obs_histogram_ =        \
        ::soi::obs::Registry::Global().GetHistogram(name);          \
    soi_obs_histogram_->Observe(value, query_id);                   \
  } while (false)

/// Draws the next process-monotone query id from the global
/// FlightRecorder (0 under SOI_OBSERVABILITY=OFF, the "unset" id).
#define SOI_OBS_NEXT_QUERY_ID() \
  (::soi::obs::FlightRecorder::Global().NextQueryId())

/// Appends a completed ::soi::obs::QueryRecord to the global
/// FlightRecorder.
#define SOI_OBS_FLIGHT_RECORD(record)                         \
  do {                                                        \
    ::soi::obs::FlightRecorder::Global().Record(record);      \
  } while (false)

#else  // !SOI_OBS_ENABLED

#define SOI_TRACE_SPAN(name) \
  do {                       \
  } while (false)
#define SOI_OBS_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (false)
#define SOI_OBS_GAUGE_ADD(name, delta) \
  do {                                 \
  } while (false)
#define SOI_OBS_GAUGE_SET(name, value) \
  do {                                 \
  } while (false)
#define SOI_OBS_HISTOGRAM_OBSERVE(name, value) \
  do {                                         \
  } while (false)
#define SOI_OBS_HISTOGRAM_OBSERVE_EXEMPLAR(name, value, query_id) \
  do {                                                            \
  } while (false)
#define SOI_OBS_NEXT_QUERY_ID() (::std::uint64_t{0})
#define SOI_OBS_FLIGHT_RECORD(record) \
  do {                                \
  } while (false)

#endif  // SOI_OBS_ENABLED

#endif  // SOI_OBS_OBS_H_
