#ifndef SOI_OBS_METRICS_H_
#define SOI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace soi {
namespace obs {

/// Number of per-metric accumulation shards. Each writing thread hashes to
/// one shard (a stable per-thread slot), so concurrent writers on
/// different cores touch different cache lines and a counter add is a
/// single relaxed fetch_add with no shared contention up to kNumShards
/// concurrent writers.
inline constexpr int kNumShards = 16;

namespace internal_metrics {

/// The stable shard slot of the calling thread (assigned round-robin on
/// first use, so up to kNumShards threads get private shards).
int ThreadShard();

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

}  // namespace internal_metrics

/// A named monotonic counter with per-thread sharded accumulation.
/// Writers call Add/Increment (wait-free, one relaxed fetch_add on the
/// calling thread's shard); readers call Value (sums the shards).
///
/// Metric objects are created and owned by a Registry; pointers returned
/// by Registry::GetCounter are valid for the registry's lifetime, so hot
/// call sites cache them (see SOI_OBS_COUNTER_ADD in obs.h).
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[internal_metrics::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over the shards. Monotone across calls (writers only add).
  int64_t Value() const;

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  std::string name_;
  internal_metrics::CounterShard shards_[kNumShards];
};

/// A named integer gauge: a last-write-wins instantaneous level (queue
/// depth, cache size). Set/Add/Value are single relaxed atomic ops — a
/// gauge is one value, not a sum, so it is deliberately unsharded.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// The default Histogram bucket bounds for latencies in seconds: a
/// 1-2-5 exponential ladder from 1 microsecond to 50 seconds (25 finite
/// buckets plus the implicit overflow bucket).
const std::vector<double>& DefaultLatencyBounds();

/// A named fixed-bucket histogram with per-thread sharded accumulation.
/// Bucket i counts observations <= bounds[i] (bounds ascending); one
/// extra overflow bucket counts the rest. Observe is wait-free: one
/// relaxed fetch_add for the bucket plus a CAS loop folding the value
/// into the shard's running sum.
class Histogram {
 public:
  void Observe(double value) { ObserveImpl(value, 0); }

  /// Observe with an exemplar: additionally stamps `exemplar_query_id`
  /// (a FlightRecorder query id; 0 = none) as the bucket's most recent
  /// sample, so a snapshot's p99 bucket links back to a concrete
  /// replayable QueryRecord. The stamp is one relaxed last-write-wins
  /// store on top of the wait-free Observe.
  void Observe(double value, uint64_t exemplar_query_id) {
    ObserveImpl(value, exemplar_query_id);
  }

  /// Point-in-time read of one histogram. Each shard is read once with
  /// relaxed loads; because writers only add, every field is a lower
  /// bound of the true cumulative value at read time and is monotone
  /// across snapshots.
  struct Snapshot {
    std::string name;
    std::vector<double> bounds;
    /// counts.size() == bounds.size() + 1 (last = overflow bucket).
    std::vector<int64_t> counts;
    int64_t total_count = 0;
    double sum = 0.0;
    /// Per-bucket exemplar: the query id of the most recent sample
    /// observed with one (exemplars.size() == counts.size(); 0 = the
    /// bucket never saw an exemplar-carrying sample).
    std::vector<uint64_t> exemplars;
    /// Set by Since() when a negative interval delta was clamped (the
    /// registry was Reset() between the two snapshots).
    bool clamped = false;

    double Mean() const {
      return total_count > 0 ? sum / static_cast<double>(total_count) : 0.0;
    }
    /// Linear-interpolated quantile estimate from the bucket counts
    /// (q in [0, 1]); observations in the overflow bucket clamp to the
    /// last finite bound.
    double Quantile(double q) const;
    /// The exemplar query id of the bucket the q-quantile falls in
    /// (0 when that bucket carries none — e.g. all samples were
    /// observed without exemplars).
    uint64_t ExemplarForQuantile(double q) const;

    /// This snapshot minus `earlier`: the observations of the interval
    /// between the two. Bucket counts, total_count, and sum subtract;
    /// exemplars keep this snapshot's stamps (an exemplar is a level,
    /// not a sum). Negative deltas — the registry was Reset() and
    /// re-used between the snapshots — clamp to zero and set `clamped`
    /// instead of silently underflowing. Requires equal bounds.
    Snapshot Since(const Snapshot& earlier) const;
  };
  Snapshot Snap() const;

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::vector<double> bounds);

  void ObserveImpl(double value, uint64_t exemplar_query_id);

  struct alignas(64) Shard {
    void Init(size_t num_buckets) {
      counts.reset(new std::atomic<int64_t>[num_buckets]);
      for (size_t i = 0; i < num_buckets; ++i) counts[i].store(0);
    }
    std::unique_ptr<std::atomic<int64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;
  Shard shards_[kNumShards];
  // Unsharded, deliberately: an exemplar is a last-write-wins level
  // (like a Gauge), not a sum — sharding it would leave "most recent"
  // unanswerable. One relaxed store per exemplar-carrying observation.
  std::unique_ptr<std::atomic<uint64_t>[]> exemplars_;
};

/// A consistent point-in-time view of every metric in a Registry, sorted
/// by name within each kind. "Consistent" means: each individual metric
/// is a valid monotone lower bound of its true value at snapshot time
/// (relaxed reads; no metric can appear to run backwards across
/// snapshots), while no cross-metric atomicity is promised — a scrape
/// concurrent with an in-flight query may see e.g. the query counter but
/// not yet its latency observation.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<Histogram::Snapshot> histograms;

  /// Set by Since() when any negative interval delta was clamped: the
  /// registry was Reset() (or otherwise re-used) between the snapshots,
  /// so the interval is not a pure delta. Consumers (bench gates) should
  /// treat a clamped interval as suspect rather than silently reporting
  /// underflowed counters.
  bool clamped = false;

  /// The counter's value, or 0 if absent.
  int64_t CounterOr0(const std::string& name) const;
  /// The histogram snapshot, or nullptr if absent.
  const Histogram::Snapshot* FindHistogram(const std::string& name) const;

  /// This snapshot minus `earlier` (counters and histogram counts/sums
  /// subtract; gauges keep this snapshot's level): the metric activity of
  /// the interval between the two snapshots. Metrics absent from
  /// `earlier` pass through unchanged. Negative deltas clamp to zero and
  /// set `clamped` (see above) instead of silently underflowing.
  MetricsSnapshot Since(const MetricsSnapshot& earlier) const;
};

/// The metric namespace: owns the named metrics, hands out stable
/// pointers, and produces snapshots. Get* takes a mutex but is only on
/// the cold path — call sites cache the returned pointer (the
/// SOI_OBS_* macros in obs.h do this with a function-local static).
///
/// Thread-safe. Metrics live until the registry dies; the global
/// registry (Global()) never dies.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry that the library's instrumentation writes
  /// to.
  static Registry& Global();

  /// The named metric, created on first request. A name identifies one
  /// kind: requesting an existing name as a different kind is a checked
  /// fatal error, as is re-requesting a histogram with different explicit
  /// bounds. The bounds-less GetHistogram returns an existing histogram
  /// whatever its bounds, and creates with DefaultLatencyBounds().
  Counter* GetCounter(const std::string& name) SOI_EXCLUDES(mutex_);
  Gauge* GetGauge(const std::string& name) SOI_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name) SOI_EXCLUDES(mutex_);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds) SOI_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() const SOI_EXCLUDES(mutex_);

  /// Zeroes every metric value (objects and pointers stay valid). For
  /// tests and between-bench-run isolation only: concurrent writers may
  /// leave residues, so callers must quiesce instrumentation first.
  void Reset() SOI_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_{"obs.Registry.metrics",
                       lock_graph::kRankObsRegistry};
  // std::map: snapshot order == lexicographic name order, stable JSON.
  // The metric objects themselves are internally thread-safe; the mutex
  // guards the name -> object maps (registration and iteration).
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SOI_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SOI_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SOI_GUARDED_BY(mutex_);
};

}  // namespace obs
}  // namespace soi

#endif  // SOI_OBS_METRICS_H_
