#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "common/json_writer.h"

namespace soi {
namespace obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread span nesting depth (for the current thread, any recorder).
thread_local int32_t span_depth = 0;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose, like Registry::Global(): spans may still end
  // during static destruction.
  // soi-lint: naked-new (intentionally leaked singleton)
  static TraceRecorder* const global = new TraceRecorder();
  return *global;
}

int64_t TraceRecorder::NowNs() const {
  return SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
}

void TraceRecorder::Start(size_t events_per_thread) {
  MutexLock lock(mutex_);
  capacity_.store(std::max<size_t>(events_per_thread, 1),
                  std::memory_order_relaxed);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Bumping the session invalidates ring contents lazily: buffers are
  // cleared on the next write (or skipped at Collect) instead of being
  // touched here while their owner threads may be writing.
  session_.fetch_add(1, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  active_.store(false, std::memory_order_release);
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  thread_local const TraceRecorder* owner = nullptr;
  if (buffer == nullptr || owner != this) {
    MutexLock lock(mutex_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->thread_id = static_cast<int32_t>(buffers_.size()) - 1;
    owner = this;
  }
  return buffer;
}

void TraceRecorder::Record(const char* name, int64_t start_ns,
                           int64_t duration_ns, int32_t depth,
                           uint64_t session) {
  if (!active_.load(std::memory_order_relaxed) ||
      session != session_.load(std::memory_order_relaxed)) {
    return;  // recording stopped, or span began before the last Start()
  }
  ThreadBuffer* buffer = LocalBuffer();
  MutexLock lock(buffer->mutex);
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (buffer->session != session || buffer->ring.size() != capacity) {
    buffer->session = session;
    buffer->ring.assign(capacity, TraceEvent{});
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
  if (buffer->count == buffer->ring.size()) {
    ++buffer->dropped;  // overwrites the oldest event
  } else {
    ++buffer->count;
  }
  TraceEvent& event = buffer->ring[buffer->next];
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.thread_id = buffer->thread_id;
  event.depth = depth;
  buffer->next = (buffer->next + 1) % buffer->ring.size();
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::vector<TraceEvent> events;
  uint64_t session = session_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mutex_);
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      if (buffer->session != session) continue;
      // Ring order: oldest live event first.
      size_t first =
          (buffer->next + buffer->ring.size() - buffer->count) %
          buffer->ring.size();
      for (size_t i = 0; i < buffer->count; ++i) {
        events.push_back(buffer->ring[(first + i) % buffer->ring.size()]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.thread_id != b.thread_id) {
                return a.thread_id < b.thread_id;
              }
              return a.depth < b.depth;
            });
  return events;
}

int64_t TraceRecorder::dropped() const {
  int64_t total = 0;
  uint64_t session = session_.load(std::memory_order_relaxed);
  MutexLock lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    if (buffer->session == session) total += buffer->dropped;
  }
  return total;
}

void TraceRecorder::ExportChromeJson(std::ostream* out) const {
  std::vector<TraceEvent> events = Collect();
  JsonWriter json(out, /*pretty=*/false);
  json.BeginObject();
  json.KeyValue("displayTimeUnit", "ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& event : events) {
    json.BeginObject();
    json.KeyValue("name", event.name);
    json.KeyValue("cat", "soi");
    json.KeyValue("ph", "X");
    // Chrome expects microseconds; keep sub-microsecond precision.
    json.KeyValue("ts", static_cast<double>(event.start_ns) / 1e3);
    json.KeyValue("dur", static_cast<double>(event.duration_ns) / 1e3);
    json.KeyValue("pid", int64_t{1});
    json.KeyValue("tid", int64_t{event.thread_id});
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  *out << "\n";
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file.good()) {
    return Status::IOError("cannot open trace file: " + path);
  }
  ExportChromeJson(&file);
  if (!file.good()) {
    return Status::IOError("failed writing trace file: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.active()) return;
  recording_ = true;
  session_ = recorder.session_.load(std::memory_order_relaxed);
  depth_ = span_depth++;
  start_ns_ = recorder.NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!recording_) return;
  --span_depth;
  TraceRecorder& recorder = TraceRecorder::Global();
  int64_t end_ns = recorder.NowNs();
  recorder.Record(name_, start_ns_, end_ns - start_ns_, depth_, session_);
}

}  // namespace obs
}  // namespace soi
