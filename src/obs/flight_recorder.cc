#include "obs/flight_recorder.h"

#include <algorithm>

#include "common/check.h"

namespace soi {
namespace obs {

namespace {

// Min-heap comparator: the heap front is the *fastest* of the retained
// slowest queries, i.e. the next evictee. Ties break on descending
// query_id so the front (evictee) is the newest of the tied records and
// the oldest survives — deterministic under any arrival order.
bool SlowerThan(const QueryRecord& a, const QueryRecord& b) {
  if (a.total_seconds != b.total_seconds) {
    return a.total_seconds > b.total_seconds;
  }
  return a.query_id < b.query_id;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t recent_per_shard,
                               size_t slowest_capacity)
    : recent_per_shard_(recent_per_shard),
      slowest_capacity_(slowest_capacity) {
  SOI_CHECK(recent_per_shard_ >= 1) << "recent_per_shard must be >= 1";
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked on purpose, like Registry::Global(): the serving path may
  // still record during static destruction of other translation units.
  // soi-lint: naked-new (intentionally leaked singleton)
  static FlightRecorder* const global = new FlightRecorder();
  return *global;
}

void FlightRecorder::Record(const QueryRecord& record) {
  Shard& shard = shards_[internal_metrics::ThreadShard()];
  {
    MutexLock lock(shard.mutex);
    if (shard.ring.size() < recent_per_shard_) {
      shard.ring.push_back(record);
    } else {
      shard.ring[shard.next] = record;
      ++shard.dropped;
    }
    shard.next = (shard.next + 1) % recent_per_shard_;
    ++shard.total;
  }

  if (slowest_capacity_ == 0) return;
  // Lock-cheap admission: once the reservoir is full, queries at or
  // below the floor (the M-th slowest so far) skip the mutex entirely —
  // the steady-state common case.
  if (record.total_seconds <=
      slowest_floor_.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lock(slowest_mutex_);
  slowest_.push_back(record);
  std::push_heap(slowest_.begin(), slowest_.end(), SlowerThan);
  if (slowest_.size() > slowest_capacity_) {
    std::pop_heap(slowest_.begin(), slowest_.end(), SlowerThan);
    slowest_.pop_back();
  }
  if (slowest_.size() == slowest_capacity_) {
    slowest_floor_.store(slowest_.front().total_seconds,
                         std::memory_order_relaxed);
  }
}

const QueryRecord* FlightRecorder::Snapshot::Find(uint64_t query_id) const {
  for (const QueryRecord& record : recent) {
    if (record.query_id == query_id) return &record;
  }
  for (const QueryRecord& record : slowest) {
    if (record.query_id == query_id) return &record;
  }
  return nullptr;
}

FlightRecorder::Snapshot FlightRecorder::Snap() const {
  Snapshot snapshot;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    snapshot.recent.insert(snapshot.recent.end(), shard.ring.begin(),
                           shard.ring.end());
    snapshot.total_recorded += shard.total;
    snapshot.dropped += shard.dropped;
  }
  std::sort(snapshot.recent.begin(), snapshot.recent.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.query_id < b.query_id;
            });
  {
    MutexLock lock(slowest_mutex_);
    snapshot.slowest = slowest_;
  }
  std::sort(snapshot.slowest.begin(), snapshot.slowest.end(), SlowerThan);
  snapshot.last_query_id = last_query_id();
  return snapshot;
}

void FlightRecorder::Reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    shard.ring.clear();
    shard.next = 0;
    shard.total = 0;
    shard.dropped = 0;
  }
  MutexLock lock(slowest_mutex_);
  slowest_.clear();
  slowest_floor_.store(-1.0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace soi
