#ifndef SOI_OBS_DUMP_H_
#define SOI_OBS_DUMP_H_

#include <string>

#include "common/json_writer.h"
#include "common/status.h"
#include "obs/flight_recorder.h"

namespace soi {
namespace obs {

/// Serializes one QueryRecord as a JSON object (keys: query_id, psi_size,
/// k, eps, keyword_ids, timings, work counters, cache_hit, coalesced,
/// status). The writer must be positioned where a value may start.
void WriteQueryRecordJson(const QueryRecord& record, JsonWriter* json);

/// The live introspection surface (DESIGN.md "Observability"): one JSON
/// object capturing what the process is doing right now —
///
///   {"version": 1, "observability_enabled": ...,
///    "metrics": {counters/gauges/histograms incl. engine gauges
///                soi.engine.inflight / soi.cache.size /
///                soi.scratch.free, histogram exemplar query ids},
///    "flight_recorder": {last_query_id, total_recorded, dropped,
///                        "recent": [QueryRecord...],
///                        "slowest": [QueryRecord...]},
///    "lock_graph": {enabled,
///                   "nodes": [{name, rank}...],
///                   "edges": [{from, to, context}...],
///                   "violations": [{kind, summary, edges}...]}}
///
/// This is the exact component the soid serving binary mounts behind an
/// HTTP endpoint; until then it is reachable in-process, through the
/// soi_obs tool, and via the SIGUSR1 hook below. Under
/// SOI_OBSERVABILITY=OFF the document keeps its shape with empty
/// metric/recorder sections. The lock_graph section (DESIGN.md "Lock
/// ordering & layering") is likewise empty unless the build compiled
/// the detector in (SOI_DEADLOCK_DETECT=ON, the `deadlock` preset).
void DumpState(JsonWriter* json);

/// DumpState into a string.
std::string DumpStateJson();

/// DumpState to a file (atomic enough for operators: written to `path`
/// directly, flushed, write errors reported as kIOError).
[[nodiscard]] Status WriteStateFile(const std::string& path);

/// Installs the SIGUSR1 dump hook: every SIGUSR1 the process receives
/// makes it write DumpState to `path` (overwriting). Call early in
/// main(), before worker threads exist: the calling thread's signal
/// mask — which new threads inherit — is altered to block SIGUSR1, and
/// a dedicated watcher thread consumes the signal with sigwait (writing
/// JSON from an async signal handler would not be signal-safe). The
/// watcher is detached and lives for the process; installing twice or
/// on a non-POSIX platform returns an error.
[[nodiscard]] Status InstallSignalDump(const std::string& path);

}  // namespace obs
}  // namespace soi

#endif  // SOI_OBS_DUMP_H_
