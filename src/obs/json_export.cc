#include "obs/json_export.h"

#include <sstream>

namespace soi {
namespace obs {

void WriteMetricsJson(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject();

  json->Key("counters");
  json->BeginObject();
  for (const MetricsSnapshot::CounterValue& counter : snapshot.counters) {
    json->KeyValue(counter.name, counter.value);
  }
  json->EndObject();

  json->Key("gauges");
  json->BeginObject();
  for (const MetricsSnapshot::GaugeValue& gauge : snapshot.gauges) {
    json->KeyValue(gauge.name, gauge.value);
  }
  json->EndObject();

  json->Key("histograms");
  json->BeginObject();
  for (const Histogram::Snapshot& histogram : snapshot.histograms) {
    json->Key(histogram.name);
    json->BeginObject();
    json->KeyValue("count", histogram.total_count);
    json->KeyValue("sum", histogram.sum);
    json->KeyValue("mean", histogram.Mean());
    if (histogram.total_count > 0) {
      json->KeyValue("p50", histogram.Quantile(0.5));
      json->KeyValue("p90", histogram.Quantile(0.9));
      json->KeyValue("p99", histogram.Quantile(0.99));
      // The flight-recorder query id behind the p99 bucket (0 = the
      // bucket's samples carried no exemplars).
      uint64_t p99_exemplar = histogram.ExemplarForQuantile(0.99);
      if (p99_exemplar != 0) {
        json->KeyValue("p99_exemplar_query_id", p99_exemplar);
      }
      json->Key("buckets");
      json->BeginArray();
      int64_t cumulative = 0;
      for (size_t i = 0; i < histogram.counts.size(); ++i) {
        cumulative += histogram.counts[i];
        // Sparse cumulative form: only buckets whose count changes.
        if (histogram.counts[i] == 0) continue;
        json->BeginObject();
        if (i < histogram.bounds.size()) {
          json->KeyValue("le", histogram.bounds[i]);
        } else {
          json->KeyValue("le", "+inf");
        }
        json->KeyValue("count", cumulative);
        if (i < histogram.exemplars.size() && histogram.exemplars[i] != 0) {
          json->KeyValue("exemplar_query_id", histogram.exemplars[i]);
        }
        json->EndObject();
      }
      json->EndArray();
    }
    json->EndObject();
  }
  json->EndObject();

  json->EndObject();
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  JsonWriter json(&out);
  WriteMetricsJson(snapshot, &json);
  return out.str();
}

}  // namespace obs
}  // namespace soi
