#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace soi {
namespace serve {

namespace {

bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
    // A draining server answers with kUnavailable until it stops; the
    // retry either lands after a restart or turns into a (retryable)
    // transport error once the listener closes.
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// Transport failures invalidate the stream (a frame may be half-read);
/// typed error frames arrive on a healthy stream and keep it.
bool NeedsReconnect(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

}  // namespace

void SoidClient::Disconnect() {
  socket_.Close();
  connected_ = false;
}

Status SoidClient::EnsureConnected() {
  if (connected_) return Status::OK();
  SOI_ASSIGN_OR_RETURN(socket_,
                       Socket::Connect(options_.host, options_.port,
                                       options_.connect_timeout_seconds));
  SOI_RETURN_NOT_OK(socket_.SetIoTimeouts(options_.io_timeout_seconds,
                                          options_.io_timeout_seconds));
  connected_ = true;
  ++stats_.reconnects;
  return Status::OK();
}

Status SoidClient::ReadFrame(FrameHeader* header, std::string* payload) {
  std::string header_bytes;
  bool clean_eof = false;
  SOI_RETURN_NOT_OK(
      socket_.RecvExact(kFrameHeaderBytes, &header_bytes, &clean_eof));
  if (clean_eof) {
    return Status::IOError("server closed the connection before replying");
  }
  SOI_RETURN_NOT_OK(DecodeFrameHeader(header_bytes, header));
  payload->clear();
  if (header->payload_bytes > 0) {
    SOI_RETURN_NOT_OK(
        socket_.RecvExact(header->payload_bytes, payload, &clean_eof));
    if (clean_eof) {
      return Status::IOError("server closed the connection mid-frame");
    }
  }
  return Status::OK();
}

Result<QueryResponse> SoidClient::QueryOnce(const QueryRequest& request) {
  SOI_RETURN_NOT_OK(EnsureConnected());
  Status status = socket_.SendAll(EncodeQueryFrame(request));
  if (!status.ok()) {
    // A send timeout means the server will not drain our bytes — at the
    // transport level that is indistinguishable from a dead peer, so it
    // retries like one rather than surfacing as a (non-retryable)
    // deadline error.
    if (status.code() == StatusCode::kDeadlineExceeded) {
      return Status::IOError("send stalled: " + status.message());
    }
    return status;
  }
  FrameHeader header;
  std::string payload;
  SOI_RETURN_NOT_OK(ReadFrame(&header, &payload));
  switch (header.type) {
    case FrameType::kResult: {
      QueryResponse response;
      SOI_RETURN_NOT_OK(DecodeResultPayload(payload, &response));
      if (response.request_id != request.request_id) {
        return Status::IOError(
            "response stream desynchronized: got result for request " +
            std::to_string(response.request_id) + ", expected " +
            std::to_string(request.request_id));
      }
      return response;
    }
    case FrameType::kError: {
      ErrorResponse error;
      SOI_RETURN_NOT_OK(DecodeErrorPayload(payload, &error));
      // request_id 0 marks a connection-scoped error (malformed frame,
      // connection cap); anything else must match.
      if (error.request_id != 0 &&
          error.request_id != request.request_id) {
        return Status::IOError(
            "response stream desynchronized: got error for request " +
            std::to_string(error.request_id) + ", expected " +
            std::to_string(request.request_id));
      }
      return error.status;
    }
    case FrameType::kQuery:
      return Status::IOError("server sent a Query frame");
  }
  return Status::IOError("unreachable frame type");
}

Result<QueryResponse> SoidClient::QueryWithBudget(const SoiQuery& query,
                                                  bool has_deadline,
                                                  double deadline_seconds) {
  Status last = Status::Internal("no attempt made");
  double backoff = options_.initial_backoff_seconds;
  int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * options_.backoff_multiplier,
                         options_.max_backoff_seconds);
    }
    QueryRequest request;
    // A fresh id per attempt: a stale response to a timed-out earlier
    // attempt can then never be mistaken for this one's answer.
    request.request_id = next_request_id_++;
    request.query = query;
    request.has_deadline = has_deadline;
    request.deadline_seconds = deadline_seconds;
    ++stats_.attempts;
    Result<QueryResponse> result = QueryOnce(request);
    if (result.ok()) return result;
    last = result.status();
    if (NeedsReconnect(last)) Disconnect();
    if (!IsRetryable(last)) return last;
  }
  return last;
}

}  // namespace serve
}  // namespace soi
