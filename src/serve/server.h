#ifndef SOI_SERVE_SERVER_H_
#define SOI_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace soi {

class QueryEngine;

namespace serve {

/// Tuning and robustness knobs of the soid front-end. Every bound is a
/// fail-closed overload valve: connections above max_connections are
/// refused, requests above queue_capacity are shed with
/// kResourceExhausted, and a client that stalls mid-frame or cannot
/// drain its responses is evicted rather than allowed to pin a worker.
struct SoidServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port, readable via port() after
  /// Start() (how tests and the in-process bench bind).
  int port = 0;
  /// Worker threads executing requests against the engine.
  int num_workers = 4;
  /// Bounded request queue capacity — the explicit backpressure valve.
  size_t queue_capacity = 64;
  /// Concurrent connection cap; excess accepts are answered with one
  /// kResourceExhausted error frame and closed.
  size_t max_connections = 64;
  /// Slow-client eviction: no bytes for this long mid-frame, or a
  /// response the peer will not drain within write_timeout_seconds,
  /// closes the connection. Idle connections (no frame in progress) are
  /// not evicted.
  double read_timeout_seconds = 10.0;
  double write_timeout_seconds = 10.0;
  /// Graceful drain budget: after RequestDrain(), in-flight and queued
  /// requests get this long to finish before their tokens are cancelled
  /// and queued work is answered with kCancelled.
  double drain_deadline_seconds = 5.0;
  /// When non-empty, Wait() flushes obs::DumpState JSON here as the last
  /// act of a drain — the post-mortem flight record of the process.
  std::string drain_state_path;
};

/// The soid serving front-end (DESIGN.md "Serving & overload"): a TCP
/// server speaking the serve/protocol.h framing over one warm-started
/// QueryEngine.
///
/// Threading model: one accept loop (50ms poll tick so drain is prompt),
/// one reader thread per live connection, and num_workers worker threads
/// consuming the bounded request queue. Readers decode + admit (frame
/// validation, wire-deadline token construction, expired-at-admission
/// shedding, queue backpressure); workers evaluate through
/// QueryEngine::TryRun with the request's CancellationToken and write
/// the response under the connection's write lock. Every failure is a
/// typed error frame or a counted eviction — never a crash, never a
/// silent drop (chaos-gated by tests/serve_chaos_test.cc).
///
/// Drain state machine: kServing -> (RequestDrain, e.g. SIGTERM) ->
/// kDraining (listener closed; readers keep reading, and any complete
/// frame that arrives after the transition — including one that raced
/// the SIGTERM in a socket buffer — is answered with a typed
/// kUnavailable error frame before the connection closes, never a
/// silent drop) -> [drain deadline elapses] kCancelling (in-flight
/// tokens cancelled, queued requests answered kCancelled) -> kStopped
/// (workers joined, readers exited, obs state file flushed).
class SoidServer {
 public:
  enum class State { kIdle, kServing, kDraining, kCancelling, kStopped };

  /// Monotone counters mirrored into the soi.serve.* metrics; exposed
  /// directly so tests assert behavior in SOI_OBSERVABILITY=OFF builds
  /// too.
  struct Stats {
    int64_t accepted = 0;
    int64_t connections_rejected = 0;
    int64_t requests = 0;
    int64_t responses_ok = 0;
    int64_t responses_error = 0;
    int64_t bad_frames = 0;
    int64_t shed_queue_full = 0;
    int64_t expired_at_admission = 0;
    int64_t evicted_slow = 0;
    /// Complete frames read after the drain transition and answered with
    /// a kUnavailable error frame (the drain-race guarantee).
    int64_t rejected_draining = 0;
    int64_t drain_cancelled = 0;
    int64_t faults_injected = 0;
  };

  /// The engine must be thread-safe (it is) and outlive the server.
  SoidServer(QueryEngine* engine, SoidServerOptions options);
  ~SoidServer();

  SoidServer(const SoidServer&) = delete;
  SoidServer& operator=(const SoidServer&) = delete;

  /// Binds, listens, and spawns the accept loop and workers. Fails
  /// (kIOError / kInvalidArgument) without leaking threads.
  [[nodiscard]] Status Start();

  /// The bound port (valid after Start(); the ephemeral answer when
  /// options.port was 0).
  int port() const { return port_; }

  /// Begins graceful drain. Idempotent, async-signal-watcher friendly
  /// (ordinary thread context required — wire it to SIGTERM through
  /// common/signal_watch.h, never a raw signal handler). The actual
  /// teardown runs on the thread blocked in Wait().
  void RequestDrain();

  /// Blocks until a requested drain completes, then tears down: joins
  /// the accept loop and workers, waits for reader threads, flushes the
  /// drain state file. Returns OK on a fully clean drain (every request
  /// finished within the drain deadline), kDeadlineExceeded when
  /// in-flight work had to be cancelled, or the state-file write error.
  /// Must be called exactly once per successful Start(); the destructor
  /// calls RequestDrain() + Wait() if the caller has not.
  [[nodiscard]] Status Wait();

  State state() const { return state_.load(std::memory_order_acquire); }
  Stats stats() const;

 private:
  struct Connection;
  struct Request {
    std::shared_ptr<Connection> conn;
    QueryRequest wire;
    CancellationToken token;
    uint64_t serial = 0;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();

  /// One frame: header + payload + dispatch. Returns false when the
  /// connection is done (EOF, eviction, protocol violation).
  bool ServeOneFrame(const std::shared_ptr<Connection>& conn);
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   QueryRequest request);
  void ExecuteRequest(const Request& request);

  /// Serialized, best-effort frame write; evicts the connection on a
  /// send timeout (slow client) and counts every failure.
  void WriteFrame(const std::shared_ptr<Connection>& conn,
                  const std::string& frame);
  void WriteError(const std::shared_ptr<Connection>& conn,
                  uint64_t request_id, const Status& status);
  void EvictConnection(const std::shared_ptr<Connection>& conn,
                       const char* why);

  /// OK, or why the request was not admitted (kResourceExhausted when
  /// the queue is full, kCancelled when the server is draining).
  [[nodiscard]] Status TryEnqueue(Request request);
  /// Pops one request; false when the queue is stopped and empty.
  bool PopRequest(Request* out);

  void RegisterToken(uint64_t serial, const CancellationToken& token);
  void ReleaseToken(uint64_t serial);
  void FinishRequest();

  QueryEngine* const engine_;
  const SoidServerOptions options_;
  int port_ = 0;
  Listener listener_;
  std::atomic<State> state_{State::kIdle};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_accepting_{false};
  /// Set at the kServing -> kDraining transition. Readers poll it on a
  /// short first-byte tick: an idle connection closes promptly, while a
  /// frame already in the socket buffer is still read in full and
  /// answered with kUnavailable instead of being silently dropped.
  std::atomic<bool> draining_reads_{false};
  /// Set in kCancelling: workers answer queued requests with kCancelled
  /// instead of evaluating them.
  std::atomic<bool> cancel_queued_{false};

  mutable Mutex queue_mutex_{"serve.SoidServer.queue",
                             lock_graph::kRankServe};
  CondVar queue_cv_;
  std::deque<Request> queue_ SOI_GUARDED_BY(queue_mutex_);
  bool queue_stopped_ SOI_GUARDED_BY(queue_mutex_) = false;
  /// Admitted requests not yet answered (queued + executing); the
  /// quantity drain waits on.
  int64_t outstanding_ SOI_GUARDED_BY(queue_mutex_) = 0;
  CondVar drain_cv_;  // signalled when outstanding_ hits zero
  CondVar drain_request_cv_;  // signalled by RequestDrain

  mutable Mutex conns_mutex_{"serve.SoidServer.conns",
                             lock_graph::kRankServe};
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> conns_
      SOI_GUARDED_BY(conns_mutex_);
  uint64_t next_conn_id_ SOI_GUARDED_BY(conns_mutex_) = 0;
  /// Live reader threads (they are detached; drain waits for zero).
  int64_t readers_active_ SOI_GUARDED_BY(conns_mutex_) = 0;
  CondVar readers_cv_;

  mutable Mutex tokens_mutex_{"serve.SoidServer.tokens",
                              lock_graph::kRankServe};
  std::unordered_map<uint64_t, CancellationToken> inflight_tokens_
      SOI_GUARDED_BY(tokens_mutex_);
  std::atomic<uint64_t> next_serial_{0};

  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

/// Installs a SIGTERM watcher (through the shared common/signal_watch.h
/// mask helper, so it composes with obs::InstallSignalDump's SIGUSR1
/// hook) that calls server->RequestDrain(). Call before Start() and
/// before other threads exist; the server must outlive the process's
/// last SIGTERM delivery.
[[nodiscard]] Status InstallSigtermDrain(SoidServer* server);

}  // namespace serve
}  // namespace soi

#endif  // SOI_SERVE_SERVER_H_
