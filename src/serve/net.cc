#include "serve/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cmath>
#include <utility>

namespace soi {
namespace serve {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::string(strerror(errno)));
}

bool IsTimeoutErrno() {
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == ETIMEDOUT;
}

struct timeval ToTimeval(double seconds) {
  struct timeval tv = {};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    // A strictly positive timeout must not truncate to {0,0}, which the
    // kernel reads as "block forever".
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  return tv;
}

Status ParseAddress(const std::string& host, int port,
                    struct sockaddr_in* out) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  *out = {};
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, int port,
                               double timeout_seconds) {
  struct sockaddr_in address;
  SOI_RETURN_NOT_OK(ParseAddress(host, port, &address));
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket()");

  // Bounded connect: go non-blocking for the handshake, then restore.
  int flags = fcntl(socket.fd(), F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  int rc = ::connect(socket.fd(),
                     reinterpret_cast<struct sockaddr*>(&address),
                     sizeof(address));
  if (rc != 0) {
    if (errno != EINPROGRESS) return Errno("connect()");
    struct pollfd pfd = {};
    pfd.fd = socket.fd();
    pfd.events = POLLOUT;
    int timeout_ms = timeout_seconds > 0
                         ? static_cast<int>(timeout_seconds * 1000.0)
                         : -1;
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) return Errno("poll(connect)");
    if (ready == 0) {
      return Status::DeadlineExceeded("connect to " + host + ":" +
                                      std::to_string(port) + " timed out");
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) !=
        0) {
      return Errno("getsockopt(SO_ERROR)");
    }
    if (so_error != 0) {
      errno = so_error;
      return Errno("connect to " + host + ":" + std::to_string(port));
    }
  }
  if (fcntl(socket.fd(), F_SETFL, flags) != 0) {
    return Errno("fcntl(F_SETFL, restore)");
  }
  int one = 1;
  // Best-effort latency knob; a kernel refusing it is not an error.
  (void)setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));
  return socket;
}

Status Socket::SetIoTimeouts(double recv_seconds, double send_seconds) {
  struct timeval recv_tv = ToTimeval(recv_seconds);
  struct timeval send_tv = ToTimeval(send_seconds);
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &recv_tv,
                 sizeof(recv_tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  if (setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_tv,
                 sizeof(send_tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status Socket::SendAll(std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeoutErrno()) {
        return Status::DeadlineExceeded(
            "send timed out after " + std::to_string(sent) + "/" +
            std::to_string(data.size()) + " bytes");
      }
      return Errno("send()");
    }
    if (n == 0) return Status::IOError("send() made no progress");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::RecvExact(size_t bytes, std::string* out, bool* clean_eof) {
  *clean_eof = false;
  out->clear();
  out->resize(bytes);
  size_t received = 0;
  while (received < bytes) {
    ssize_t n =
        ::recv(fd_, out->data() + received, bytes - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeoutErrno()) {
        return Status::DeadlineExceeded(
            "recv timed out after " + std::to_string(received) + "/" +
            std::to_string(bytes) + " bytes");
      }
      return Errno("recv()");
    }
    if (n == 0) {
      if (received == 0) {
        out->clear();
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IOError("peer closed after " +
                             std::to_string(received) + "/" +
                             std::to_string(bytes) + " bytes of a frame");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(const std::string& host, int port,
                                int backlog) {
  struct sockaddr_in address;
  SOI_RETURN_NOT_OK(ParseAddress(host, port, &address));
  Listener listener;
  listener.socket_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listener.socket_.valid()) return Errno("socket()");
  int one = 1;
  if (setsockopt(listener.socket_.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(listener.socket_.fd(),
             reinterpret_cast<struct sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(listener.socket_.fd(), backlog) != 0) {
    return Errno("listen()");
  }
  struct sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (getsockname(listener.socket_.fd(),
                  reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
    return Errno("getsockname()");
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<Socket> Listener::Accept(double timeout_seconds) {
  struct pollfd pfd = {};
  pfd.fd = socket_.fd();
  pfd.events = POLLIN;
  int timeout_ms = timeout_seconds > 0
                       ? static_cast<int>(timeout_seconds * 1000.0)
                       : -1;
  int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) {
      return Status::DeadlineExceeded("accept interrupted");
    }
    return Errno("poll(accept)");
  }
  if (ready == 0) {
    return Status::DeadlineExceeded("no connection within accept timeout");
  }
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return Status::Cancelled("listener closed");
  }
  Socket conn(::accept(socket_.fd(), nullptr, nullptr));
  if (!conn.valid()) {
    if (errno == EINTR || IsTimeoutErrno()) {
      return Status::DeadlineExceeded("accept raced a vanished client");
    }
    return Errno("accept()");
  }
  int one = 1;
  (void)setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

}  // namespace serve
}  // namespace soi
