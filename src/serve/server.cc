#include "serve/server.h"

#include <signal.h>

#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "common/signal_watch.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "obs/dump.h"
#include "obs/obs.h"

namespace soi {
namespace serve {

namespace {

/// How often the accept loop re-checks the drain flag while idle; the
/// upper bound on how long a SIGTERM waits before new accepts stop.
constexpr double kAcceptTickSeconds = 0.05;

/// First-byte receive tick for reader threads. Short so an idle reader
/// notices draining_reads_ promptly (the old half-close-on-drain design
/// silently discarded frames already sitting in the socket buffer —
/// this poll keeps them readable so they can be answered with a typed
/// kUnavailable frame). Once a frame has started, reads switch back to
/// the configured read timeout.
constexpr double kReadTickSeconds = 0.05;

/// Converts a fired fault point into a typed Status at the serve
/// boundary, mirroring how QueryEngine::TryRun catches FaultInjectedError
/// — a fault inside soid must surface as an error frame or a closed
/// connection, never an escaping exception.
[[nodiscard]] Status CheckFaultPoint([[maybe_unused]] const char* site) {
  if (fault::kEnabled) {
    try {
      SOI_FAULT_POINT(site);
    } catch (const fault::FaultInjectedError& e) {
      return Status::Internal(e.what());
    }
  }
  return Status::OK();
}

}  // namespace

struct SoidServer::Connection {
  uint64_t id = 0;
  Socket socket;
  /// Serializes frame writes: worker responses and reader-side admission
  /// errors interleave on one stream, and a torn frame would desync the
  /// peer permanently.
  Mutex write_mutex{"serve.Connection.write", lock_graph::kRankLeaf};
  /// Set on eviction or write failure; writers drop frames for a dead
  /// connection instead of blocking on a corpse.
  std::atomic<bool> dead{false};
};

struct SoidServer::AtomicStats {
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> connections_rejected{0};
  std::atomic<int64_t> requests{0};
  std::atomic<int64_t> responses_ok{0};
  std::atomic<int64_t> responses_error{0};
  std::atomic<int64_t> bad_frames{0};
  std::atomic<int64_t> shed_queue_full{0};
  std::atomic<int64_t> expired_at_admission{0};
  std::atomic<int64_t> evicted_slow{0};
  std::atomic<int64_t> rejected_draining{0};
  std::atomic<int64_t> drain_cancelled{0};
  std::atomic<int64_t> faults_injected{0};
};

SoidServer::SoidServer(QueryEngine* engine, SoidServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      stats_(std::make_unique<AtomicStats>()) {}

SoidServer::~SoidServer() {
  if (state() != State::kIdle && state() != State::kStopped) {
    RequestDrain();
    (void)Wait();
  }
}

Status SoidServer::Start() {
  if (state() != State::kIdle) {
    return Status::InvalidArgument("Start() called twice");
  }
  if (options_.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options_.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  SOI_ASSIGN_OR_RETURN(
      listener_, Listener::Bind(options_.host, options_.port,
                                static_cast<int>(options_.max_connections)));
  port_ = listener_.port();
  state_.store(State::kServing, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SoidServer::RequestDrain() {
  bool expected = false;
  if (!drain_requested_.compare_exchange_strong(expected, true)) return;
  stop_accepting_.store(true, std::memory_order_release);
  MutexLock lock(queue_mutex_);
  drain_request_cv_.NotifyAll();
}

Status SoidServer::Wait() {
  {
    MutexLock lock(queue_mutex_);
    while (!drain_requested_.load(std::memory_order_acquire)) {
      drain_request_cv_.Wait(queue_mutex_);
    }
  }
  // Stop admitting before the state flips: readers observe
  // draining_reads_ on their first-byte tick, so once state() reads
  // kDraining the no-new-admissions guarantee already holds. Idle
  // connections close within one tick; a frame already accepted into a
  // socket buffer (e.g. sent just before the SIGTERM) is still read in
  // full and answered with a typed kUnavailable error frame — never a
  // silently dropped connection. (An earlier design half-closed every
  // socket here instead; ShutdownRead discards buffered inbound bytes,
  // which is exactly the silent drop the drain-race guarantee forbids.)
  draining_reads_.store(true, std::memory_order_release);
  state_.store(State::kDraining, std::memory_order_release);

  // 1. Stop accepting: the loop observes stop_accepting_ within one tick.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // 3. Give queued + executing requests the drain budget.
  bool clean = true;
  {
    Stopwatch timer;
    MutexLock lock(queue_mutex_);
    while (outstanding_ > 0) {
      double remaining =
          options_.drain_deadline_seconds - timer.ElapsedSeconds();
      if (remaining <= 0) {
        clean = false;
        break;
      }
      (void)drain_cv_.WaitFor(queue_mutex_, remaining);
    }
  }

  // 4. Deadline blown: cancel in-flight tokens (engine loops observe the
  // flag at cell/segment granularity and return kCancelled promptly) and
  // have workers answer still-queued requests without touching the
  // engine. Then wait for the stragglers — bounded by the cancellation
  // check cadence plus the write timeout.
  int64_t cancelled = 0;
  if (!clean) {
    state_.store(State::kCancelling, std::memory_order_release);
    cancel_queued_.store(true, std::memory_order_release);
    {
      MutexLock lock(tokens_mutex_);
      cancelled = static_cast<int64_t>(inflight_tokens_.size());
      for (auto& [serial, token] : inflight_tokens_) token.Cancel();
    }
    MutexLock lock(queue_mutex_);
    cancelled += static_cast<int64_t>(queue_.size());
    while (outstanding_ > 0) drain_cv_.Wait(queue_mutex_);
  }

  // 5. Stop the queue and join the workers.
  {
    MutexLock lock(queue_mutex_);
    queue_stopped_ = true;
    queue_cv_.NotifyAll();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // 6. Wait for reader threads (unblocked by the half-close in step 2).
  {
    MutexLock lock(conns_mutex_);
    while (readers_active_ > 0) readers_cv_.Wait(conns_mutex_);
    conns_.clear();
  }
  state_.store(State::kStopped, std::memory_order_release);

  // 7. Flush the post-mortem state file — the last act of the drain, so
  // it reflects every counter above.
  Status file_status;
  if (!options_.drain_state_path.empty()) {
    file_status = obs::WriteStateFile(options_.drain_state_path);
  }
  SOI_RETURN_NOT_OK(file_status);
  if (!clean) {
    return Status::DeadlineExceeded(
        "drain deadline of " +
        std::to_string(options_.drain_deadline_seconds) + "s elapsed; " +
        std::to_string(cancelled) + " in-flight requests cancelled");
  }
  return Status::OK();
}

SoidServer::Stats SoidServer::stats() const {
  Stats out;
  out.accepted = stats_->accepted.load(std::memory_order_relaxed);
  out.connections_rejected =
      stats_->connections_rejected.load(std::memory_order_relaxed);
  out.requests = stats_->requests.load(std::memory_order_relaxed);
  out.responses_ok = stats_->responses_ok.load(std::memory_order_relaxed);
  out.responses_error =
      stats_->responses_error.load(std::memory_order_relaxed);
  out.bad_frames = stats_->bad_frames.load(std::memory_order_relaxed);
  out.shed_queue_full =
      stats_->shed_queue_full.load(std::memory_order_relaxed);
  out.expired_at_admission =
      stats_->expired_at_admission.load(std::memory_order_relaxed);
  out.evicted_slow = stats_->evicted_slow.load(std::memory_order_relaxed);
  out.rejected_draining =
      stats_->rejected_draining.load(std::memory_order_relaxed);
  out.drain_cancelled =
      stats_->drain_cancelled.load(std::memory_order_relaxed);
  out.faults_injected =
      stats_->faults_injected.load(std::memory_order_relaxed);
  return out;
}

void SoidServer::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    Result<Socket> accepted = listener_.Accept(kAcceptTickSeconds);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) {
        continue;  // idle tick; re-check the drain flag
      }
      if (stop_accepting_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure; the client will retry
    }
    Socket socket = std::move(accepted).ValueOrDie();
    if (Status fault = CheckFaultPoint("serve.accept"); !fault.ok()) {
      // Simulated accept failure: drop the connection (the socket closes
      // on scope exit); the client observes a transport error and
      // retries.
      stats_->faults_injected.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!socket.SetIoTimeouts(options_.read_timeout_seconds,
                              options_.write_timeout_seconds)
             .ok()) {
      continue;
    }
    auto conn = std::make_shared<Connection>();
    bool over_cap = false;
    {
      MutexLock lock(conns_mutex_);
      if (conns_.size() >= options_.max_connections) {
        over_cap = true;
      } else {
        conn->id = next_conn_id_++;
        conn->socket = std::move(socket);
        conns_.emplace(conn->id, conn);
        ++readers_active_;
      }
    }
    if (over_cap) {
      // Over the connection cap: fail closed but typed — one best-effort
      // kResourceExhausted error frame (sent outside conns_mutex_ so a
      // slow reject cannot stall readers or drain), then close.
      stats_->connections_rejected.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.serve.conn_rejected", 1);
      (void)socket.SendAll(EncodeErrorFrame(
          {0, Status::ResourceExhausted(
                  "connection limit of " +
                  std::to_string(options_.max_connections) + " reached")}));
      continue;
    }
    stats_->accepted.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.accepted", 1);
    std::thread reader([this, conn]() mutable { ReaderLoop(std::move(conn)); });
    reader.detach();
  }
}

void SoidServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  while (!conn->dead.load(std::memory_order_acquire)) {
    if (!ServeOneFrame(conn)) break;
  }
  uint64_t id = conn->id;
  conn.reset();
  MutexLock lock(conns_mutex_);
  conns_.erase(id);
  --readers_active_;
  readers_cv_.NotifyAll();
}

bool SoidServer::ServeOneFrame(const std::shared_ptr<Connection>& conn) {
  // First byte separately, on a short tick: a timeout here is an *idle*
  // connection (no frame in progress), which is not an offense — loop
  // and re-check liveness and the drain flag. Once a frame has started,
  // reads run under the configured read timeout, and every further
  // timeout is a stalled client and grounds for eviction.
  if (!conn->socket
           .SetIoTimeouts(kReadTickSeconds, options_.write_timeout_seconds)
           .ok()) {
    return false;
  }
  std::string first;
  bool clean_eof = false;
  Status status = conn->socket.RecvExact(1, &first, &clean_eof);
  if (clean_eof) return false;  // normal close
  if (!status.ok()) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      // Idle tick: keep serving unless the drain has begun, in which
      // case this connection has no frame in flight and can close.
      return !draining_reads_.load(std::memory_order_acquire);
    }
    return false;
  }
  if (!conn->socket
           .SetIoTimeouts(options_.read_timeout_seconds,
                          options_.write_timeout_seconds)
           .ok()) {
    return false;
  }
  std::string rest;
  status = conn->socket.RecvExact(kFrameHeaderBytes - 1, &rest, &clean_eof);
  if (!status.ok() || clean_eof) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      stats_->evicted_slow.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.serve.evicted_slow", 1);
      EvictConnection(conn, "stalled mid-header");
    }
    return false;
  }
  if (Status fault = CheckFaultPoint("serve.read"); !fault.ok()) {
    // Simulated read failure: the stream position can no longer be
    // trusted, so fail closed exactly like a real torn read.
    stats_->faults_injected.fetch_add(1, std::memory_order_relaxed);
    EvictConnection(conn, "injected read fault");
    return false;
  }
  FrameHeader header;
  status = DecodeFrameHeader(first + rest, &header);
  if (!status.ok()) {
    stats_->bad_frames.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.bad_frame", 1);
    WriteError(conn, 0, status);
    EvictConnection(conn, "malformed frame header");
    return false;
  }
  std::string payload;
  if (header.payload_bytes > 0) {
    status = conn->socket.RecvExact(header.payload_bytes, &payload,
                                    &clean_eof);
    if (!status.ok() || clean_eof) {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        stats_->evicted_slow.fetch_add(1, std::memory_order_relaxed);
        SOI_OBS_COUNTER_ADD("soi.serve.evicted_slow", 1);
        EvictConnection(conn, "stalled mid-payload");
      }
      return false;
    }
  }
  if (header.type != FrameType::kQuery) {
    // Result/Error frames flow server->client only.
    stats_->bad_frames.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.bad_frame", 1);
    WriteError(conn, 0,
               Status::InvalidArgument(
                   "only Query frames are valid client->server"));
    EvictConnection(conn, "non-query frame");
    return false;
  }
  QueryRequest request;
  status = DecodeQueryPayload(payload, &request);
  if (!status.ok()) {
    stats_->bad_frames.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.bad_frame", 1);
    WriteError(conn, 0, status);
    EvictConnection(conn, "malformed query payload");
    return false;
  }
  if (draining_reads_.load(std::memory_order_acquire)) {
    // Drain race: the frame was accepted (sent, buffered) before the
    // drain transition but read after it. The client gets a typed
    // retry-against-another-replica answer, then the connection closes.
    // Counted as a request so the every-request-answered invariant
    // (responses_ok + responses_error == requests) holds through drain.
    stats_->requests.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.requests", 1);
    stats_->rejected_draining.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.rejected_draining", 1);
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, request.request_id,
               Status::Unavailable(
                   "server draining: request not admitted; retry against "
                   "another replica"));
    return false;
  }
  HandleQuery(conn, std::move(request));
  return true;
}

void SoidServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                             QueryRequest request) {
  stats_->requests.fetch_add(1, std::memory_order_relaxed);
  SOI_OBS_COUNTER_ADD("soi.serve.requests", 1);

  // Admission validation: identical Status to a direct engine call, but
  // without burning a queue slot on a request that cannot run.
  if (Status invalid = request.query.Validate(); !invalid.ok()) {
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, request.request_id, invalid);
    return;
  }

  Request admitted;
  admitted.conn = conn;
  admitted.serial = next_serial_.fetch_add(1, std::memory_order_relaxed);
  admitted.token = request.has_deadline
                       ? CancellationToken::WithDeadline(
                             request.deadline_seconds)
                       : CancellationToken::Cancellable();
  admitted.wire = std::move(request);

  // Wire-deadline admission check: a budget that is already spent (the
  // client sent a non-positive remainder, or the frame sat in the socket
  // buffer past it) is shed here, before any engine work.
  if (Status expired = admitted.token.Check(); !expired.ok()) {
    stats_->expired_at_admission.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.expired_at_admission", 1);
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, admitted.wire.request_id, expired);
    return;
  }

  if (Status fault = CheckFaultPoint("serve.enqueue"); !fault.ok()) {
    stats_->faults_injected.fetch_add(1, std::memory_order_relaxed);
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, admitted.wire.request_id, fault);
    return;
  }

  uint64_t request_id = admitted.wire.request_id;
  if (Status enqueue = TryEnqueue(std::move(admitted)); !enqueue.ok()) {
    if (enqueue.code() == StatusCode::kResourceExhausted) {
      stats_->shed_queue_full.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.serve.shed_queue_full", 1);
    }
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(conn, request_id, enqueue);
  }
}

Status SoidServer::TryEnqueue(Request request) {
  MutexLock lock(queue_mutex_);
  if (queue_stopped_ || cancel_queued_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "server draining: request not admitted; retry against another "
        "replica");
  }
  if (queue_.size() >= options_.queue_capacity) {
    // The backpressure valve: reject now, with a typed error the client's
    // backoff understands, instead of queueing into unbounded latency.
    return Status::ResourceExhausted(
        "request queue full (" + std::to_string(options_.queue_capacity) +
        " deep); retry with backoff");
  }
  queue_.push_back(std::move(request));
  ++outstanding_;
  SOI_OBS_GAUGE_SET("soi.serve.queue_depth",
                    static_cast<double>(queue_.size()));
  SOI_OBS_GAUGE_SET("soi.serve.inflight", static_cast<double>(outstanding_));
  queue_cv_.NotifyOne();
  return Status::OK();
}

bool SoidServer::PopRequest(Request* out) {
  MutexLock lock(queue_mutex_);
  while (queue_.empty() && !queue_stopped_) {
    queue_cv_.Wait(queue_mutex_);
  }
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  SOI_OBS_GAUGE_SET("soi.serve.queue_depth",
                    static_cast<double>(queue_.size()));
  return true;
}

void SoidServer::WorkerLoop() {
  Request request;
  while (PopRequest(&request)) {
    ExecuteRequest(request);
    request = Request();  // release the connection before blocking again
    FinishRequest();
  }
}

void SoidServer::ExecuteRequest(const Request& request) {
  Stopwatch timer;
  if (cancel_queued_.load(std::memory_order_acquire)) {
    // Drain deadline fired while this request sat queued: answer without
    // touching the engine.
    stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.drain_cancelled", 1);
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(request.conn, request.wire.request_id,
               Status::Cancelled("server draining: request cancelled before "
                                 "execution"));
    return;
  }
  RegisterToken(request.serial, request.token);
  Result<SoiResult> result =
      engine_->TryRun(request.wire.query, request.token);
  ReleaseToken(request.serial);
  if (result.ok()) {
    QueryResponse response;
    response.request_id = request.wire.request_id;
    response.streets = std::move(result).ValueOrDie().streets;
    std::string frame = EncodeResultFrame(response);
    if (Status fault = CheckFaultPoint("serve.write"); !fault.ok()) {
      // Simulated write failure: a response frame may be torn, so the
      // connection must die rather than desync the peer.
      stats_->faults_injected.fetch_add(1, std::memory_order_relaxed);
      EvictConnection(request.conn, "injected write fault");
      return;
    }
    stats_->responses_ok.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.responses_ok", 1);
    WriteFrame(request.conn, frame);
  } else {
    if (request.token.IsCancelled() &&
        cancel_queued_.load(std::memory_order_acquire)) {
      stats_->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.serve.drain_cancelled", 1);
    }
    stats_->responses_error.fetch_add(1, std::memory_order_relaxed);
    SOI_OBS_COUNTER_ADD("soi.serve.responses_error", 1);
    WriteError(request.conn, request.wire.request_id, result.status());
  }
  SOI_OBS_HISTOGRAM_OBSERVE("soi.serve.request_seconds",
                            timer.ElapsedSeconds());
}

void SoidServer::WriteFrame(const std::shared_ptr<Connection>& conn,
                            const std::string& frame) {
  MutexLock lock(conn->write_mutex);
  if (conn->dead.load(std::memory_order_acquire)) return;
  Status status = conn->socket.SendAll(frame);
  if (!status.ok()) {
    if (status.code() == StatusCode::kDeadlineExceeded) {
      // Slow client: it will not drain its responses within the write
      // timeout, so it does not get to pin a worker thread.
      stats_->evicted_slow.fetch_add(1, std::memory_order_relaxed);
      SOI_OBS_COUNTER_ADD("soi.serve.evicted_slow", 1);
    }
    conn->dead.store(true, std::memory_order_release);
    conn->socket.ShutdownBoth();
  }
}

void SoidServer::WriteError(const std::shared_ptr<Connection>& conn,
                            uint64_t request_id, const Status& status) {
  WriteFrame(conn, EncodeErrorFrame({request_id, status}));
}

void SoidServer::EvictConnection(const std::shared_ptr<Connection>& conn,
                                 const char* why) {
  (void)why;
  bool expected = false;
  if (!conn->dead.compare_exchange_strong(expected, true)) return;
  conn->socket.ShutdownBoth();
}

void SoidServer::RegisterToken(uint64_t serial,
                               const CancellationToken& token) {
  MutexLock lock(tokens_mutex_);
  inflight_tokens_.emplace(serial, token);
}

void SoidServer::ReleaseToken(uint64_t serial) {
  MutexLock lock(tokens_mutex_);
  inflight_tokens_.erase(serial);
}

void SoidServer::FinishRequest() {
  MutexLock lock(queue_mutex_);
  --outstanding_;
  SOI_OBS_GAUGE_SET("soi.serve.inflight", static_cast<double>(outstanding_));
  if (outstanding_ == 0) drain_cv_.NotifyAll();
}

Status InstallSigtermDrain(SoidServer* server) {
#ifdef SIGTERM
  return WatchSignal(SIGTERM, [server] { server->RequestDrain(); });
#else
  (void)server;
  return Status::Internal("SIGTERM unavailable on this platform");
#endif
}

}  // namespace serve
}  // namespace soi
