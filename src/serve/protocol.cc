#include "serve/protocol.h"

#include <cmath>
#include <utility>

#include "snapshot/byte_io.h"

namespace soi {
namespace serve {

namespace {

/// Status codes cross the wire as their enum value; decode re-validates
/// the range so a corrupt byte can never materialize an out-of-enum
/// StatusCode in the client.
Status DecodeStatusCode(uint32_t raw, StatusCode* out) {
  if (raw >= static_cast<uint32_t>(kNumStatusCodes)) {
    return Status::InvalidArgument("error frame carries unknown status code " +
                                   std::to_string(raw));
  }
  *out = static_cast<StatusCode>(raw);
  return Status::OK();
}

/// ByteReader reports truncation as kIOError (it serves snapshot file
/// parsing first); on the wire a short or overlong payload is a
/// malformed frame, so every decoder normalizes to kInvalidArgument —
/// the fail-closed contract tests/serve_protocol_test.cc pins down.
Status AsFrameError(Status status) {
  if (status.ok() || status.code() == StatusCode::kInvalidArgument) {
    return status;
  }
  return Status::InvalidArgument(status.message());
}

std::string WrapFrame(FrameType type, std::string payload) {
  SOI_CHECK(payload.size() <= kMaxFramePayloadBytes)
      << "encoder produced an oversized frame";
  ByteWriter header;
  header.PutU32(kFrameMagic);
  header.PutU8(kProtocolVersion);
  header.PutU8(static_cast<uint8_t>(type));
  header.PutU8(0);  // reserved
  header.PutU8(0);  // reserved
  header.PutU32(static_cast<uint32_t>(payload.size()));
  std::string frame = header.TakeData();
  frame += payload;
  return frame;
}

}  // namespace

std::string EncodeQueryFrame(const QueryRequest& request) {
  ByteWriter w;
  w.PutU64(request.request_id);
  w.PutU8(request.has_deadline ? 1 : 0);
  w.PutDouble(request.deadline_seconds);
  w.PutI32(request.query.k);
  w.PutDouble(request.query.eps);
  const std::vector<KeywordId>& ids = request.query.keywords.ids();
  w.PutU32(static_cast<uint32_t>(ids.size()));
  for (KeywordId id : ids) w.PutI32(id);
  return WrapFrame(FrameType::kQuery, w.TakeData());
}

std::string EncodeResultFrame(const QueryResponse& response) {
  ByteWriter w;
  w.PutU64(response.request_id);
  w.PutU32(static_cast<uint32_t>(response.streets.size()));
  for (const RankedStreet& street : response.streets) {
    w.PutI32(street.street);
    w.PutDouble(street.interest);
    w.PutI32(street.best_segment);
  }
  return WrapFrame(FrameType::kResult, w.TakeData());
}

std::string EncodeErrorFrame(const ErrorResponse& error) {
  ByteWriter w;
  w.PutU64(error.request_id);
  w.PutU32(static_cast<uint32_t>(error.status.code()));
  w.PutString(error.status.message());
  return WrapFrame(FrameType::kError, w.TakeData());
}

Status DecodeFrameHeader(std::string_view data, FrameHeader* out) {
  if (data.size() != kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header must be " +
                                   std::to_string(kFrameHeaderBytes) +
                                   " bytes, got " +
                                   std::to_string(data.size()));
  }
  ByteReader r(data);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  uint8_t reserved0 = 0;
  uint8_t reserved1 = 0;
  uint32_t payload_bytes = 0;
  SOI_RETURN_NOT_OK(r.ReadU32(&magic));
  SOI_RETURN_NOT_OK(r.ReadU8(&version));
  SOI_RETURN_NOT_OK(r.ReadU8(&type));
  SOI_RETURN_NOT_OK(r.ReadU8(&reserved0));
  SOI_RETURN_NOT_OK(r.ReadU8(&reserved1));
  SOI_RETURN_NOT_OK(r.ReadU32(&payload_bytes));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  if (reserved0 != 0 || reserved1 != 0) {
    return Status::InvalidArgument("nonzero reserved frame header bytes");
  }
  if (type != static_cast<uint8_t>(FrameType::kQuery) &&
      type != static_cast<uint8_t>(FrameType::kResult) &&
      type != static_cast<uint8_t>(FrameType::kError)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (payload_bytes > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload_bytes) +
        " bytes exceeds the " + std::to_string(kMaxFramePayloadBytes) +
        "-byte cap");
  }
  out->type = static_cast<FrameType>(type);
  out->payload_bytes = payload_bytes;
  return Status::OK();
}

Status DecodeQueryPayloadImpl(std::string_view payload, QueryRequest* out) {
  ByteReader r(payload);
  QueryRequest request;
  uint8_t has_deadline = 0;
  SOI_RETURN_NOT_OK(r.ReadU64(&request.request_id));
  SOI_RETURN_NOT_OK(r.ReadU8(&has_deadline));
  if (has_deadline > 1) {
    return Status::InvalidArgument("query frame has_deadline must be 0/1");
  }
  request.has_deadline = has_deadline == 1;
  SOI_RETURN_NOT_OK(r.ReadDouble(&request.deadline_seconds));
  if (request.has_deadline && !std::isfinite(request.deadline_seconds)) {
    return Status::InvalidArgument(
        "query frame carries a non-finite deadline");
  }
  SOI_RETURN_NOT_OK(r.ReadI32(&request.query.k));
  SOI_RETURN_NOT_OK(r.ReadDouble(&request.query.eps));
  uint32_t num_keywords = 0;
  SOI_RETURN_NOT_OK(r.ReadU32(&num_keywords));
  if (num_keywords > kMaxQueryKeywords) {
    return Status::InvalidArgument(
        "query frame carries " + std::to_string(num_keywords) +
        " keywords, above the " + std::to_string(kMaxQueryKeywords) + " cap");
  }
  std::vector<KeywordId> ids;
  ids.reserve(num_keywords);
  for (uint32_t i = 0; i < num_keywords; ++i) {
    int32_t id = 0;
    SOI_RETURN_NOT_OK(r.ReadI32(&id));
    ids.push_back(id);
  }
  request.query.keywords = KeywordSet(std::move(ids));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("query frame has trailing bytes");
  }
  // Semantic validation (NaN eps, k <= 0, ...) stays with
  // SoiQuery::Validate() at admission, so wire and in-process queries
  // fail with identical messages.
  *out = std::move(request);
  return Status::OK();
}

Status DecodeResultPayloadImpl(std::string_view payload, QueryResponse* out) {
  ByteReader r(payload);
  QueryResponse response;
  SOI_RETURN_NOT_OK(r.ReadU64(&response.request_id));
  uint32_t num_streets = 0;
  SOI_RETURN_NOT_OK(r.ReadU32(&num_streets));
  if (num_streets > kMaxResultStreets) {
    return Status::InvalidArgument(
        "result frame carries " + std::to_string(num_streets) +
        " streets, above the " + std::to_string(kMaxResultStreets) + " cap");
  }
  response.streets.reserve(num_streets);
  for (uint32_t i = 0; i < num_streets; ++i) {
    RankedStreet street;
    SOI_RETURN_NOT_OK(r.ReadI32(&street.street));
    SOI_RETURN_NOT_OK(r.ReadDouble(&street.interest));
    SOI_RETURN_NOT_OK(r.ReadI32(&street.best_segment));
    response.streets.push_back(street);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("result frame has trailing bytes");
  }
  *out = std::move(response);
  return Status::OK();
}

Status DecodeErrorPayloadImpl(std::string_view payload, ErrorResponse* out) {
  ByteReader r(payload);
  ErrorResponse error;
  SOI_RETURN_NOT_OK(r.ReadU64(&error.request_id));
  uint32_t raw_code = 0;
  std::string message;
  SOI_RETURN_NOT_OK(r.ReadU32(&raw_code));
  SOI_RETURN_NOT_OK(r.ReadString(&message));
  StatusCode code = StatusCode::kOk;
  SOI_RETURN_NOT_OK(DecodeStatusCode(raw_code, &code));
  if (code == StatusCode::kOk) {
    return Status::InvalidArgument("error frame carries an OK status");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("error frame has trailing bytes");
  }
  error.status = Status(code, std::move(message));
  *out = std::move(error);
  return Status::OK();
}

Status DecodeQueryPayload(std::string_view payload, QueryRequest* out) {
  return AsFrameError(DecodeQueryPayloadImpl(payload, out));
}

Status DecodeResultPayload(std::string_view payload, QueryResponse* out) {
  return AsFrameError(DecodeResultPayloadImpl(payload, out));
}

Status DecodeErrorPayload(std::string_view payload, ErrorResponse* out) {
  return AsFrameError(DecodeErrorPayloadImpl(payload, out));
}

}  // namespace serve
}  // namespace soi
