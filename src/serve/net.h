#ifndef SOI_SERVE_NET_H_
#define SOI_SERVE_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace soi {
namespace serve {

/// Thin RAII + Status layer over POSIX TCP sockets — the only place in
/// src/serve/ that touches raw send/recv (enforced by soi-lint's
/// unchecked-io rule: every syscall return value here is checked and
/// converted to a typed Status). Timeouts map to kDeadlineExceeded, the
/// peer vanishing mid-byte-stream and every other socket failure to
/// kIOError; neither ever surfaces as a crash or a silent partial
/// transfer. SIGPIPE is suppressed per-send (MSG_NOSIGNAL), so a peer
/// closing mid-write is an error return, not process death.
class Socket {
 public:
  /// An invalid (fd-less) socket.
  Socket() = default;
  /// Adopts an already-open fd.
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Connects to host:port with a bounded connect timeout.
  [[nodiscard]] static Result<Socket> Connect(const std::string& host,
                                              int port,
                                              double timeout_seconds);

  /// Per-call receive/send timeouts (SO_RCVTIMEO / SO_SNDTIMEO);
  /// <= 0 means block indefinitely.
  [[nodiscard]] Status SetIoTimeouts(double recv_seconds,
                                     double send_seconds);

  /// Sends all of `data`. kDeadlineExceeded if the send timeout elapses
  /// mid-transfer, kIOError on any other failure.
  [[nodiscard]] Status SendAll(std::string_view data);

  /// Receives exactly `bytes` into `out` (resized). Outcomes:
  ///  - OK, *clean_eof=false: buffer filled;
  ///  - OK, *clean_eof=true: the peer closed before the first byte
  ///    (out is cleared) — the normal end of a connection;
  ///  - kDeadlineExceeded: the receive timeout elapsed;
  ///  - kIOError: EOF mid-buffer or a socket error.
  [[nodiscard]] Status RecvExact(size_t bytes, std::string* out,
                                 bool* clean_eof);

  /// Half-closes the read side: a peer (or our own reader thread) blocked
  /// in recv on this socket observes EOF. Note that buffered-but-unread
  /// inbound bytes are discarded — which is why graceful drain answers
  /// raced-in frames explicitly instead of half-closing (the drain-race
  /// guarantee: a typed error frame, never a silent drop).
  void ShutdownRead();
  /// Full shutdown (both directions); used by slow-client eviction.
  void ShutdownBoth();

  /// Closes the fd (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket.
class Listener {
 public:
  Listener() = default;

  /// Binds host:port (port 0 = kernel-assigned ephemeral, readable via
  /// port() afterwards) and listens.
  [[nodiscard]] static Result<Listener> Bind(const std::string& host,
                                             int port, int backlog);

  /// Accepts one connection, waiting at most `timeout_seconds` (so the
  /// accept loop can poll a drain flag): OK with a valid socket, or
  /// kDeadlineExceeded when the timeout elapses with nobody waiting,
  /// kCancelled when the listener was closed under it, kIOError
  /// otherwise.
  [[nodiscard]] Result<Socket> Accept(double timeout_seconds);

  bool valid() const { return socket_.valid(); }
  int port() const { return port_; }

  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  int port_ = 0;
};

}  // namespace serve
}  // namespace soi

#endif  // SOI_SERVE_NET_H_
