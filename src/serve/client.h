#ifndef SOI_SERVE_CLIENT_H_
#define SOI_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/soi_query.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace soi {
namespace serve {

struct SoidClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  double connect_timeout_seconds = 5.0;
  /// Per-syscall receive/send timeout on the client's socket.
  double io_timeout_seconds = 10.0;
  /// Total tries per Query() call (first attempt included). 1 disables
  /// retry.
  int max_attempts = 4;
  /// Deterministic exponential backoff between retries:
  /// initial * multiplier^(attempt-1), capped at max. No jitter by
  /// design — the library forbids ambient randomness (determinism rule,
  /// tools/soi_lint.py), and reproducible retry schedules are worth more
  /// to this codebase than thundering-herd smoothing.
  double initial_backoff_seconds = 0.01;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.25;
};

/// Synchronous client for the soid wire protocol, with the retry policy
/// the server's failure taxonomy is designed around (DESIGN.md "Serving
/// & overload"):
///
///   retried (after reconnect + backoff):
///     - transport failures (kIOError): connection refused/reset, EOF
///       mid-frame, response desync — the connection is torn down first;
///     - kResourceExhausted error frames: the server's explicit
///       backpressure signal, answered by backing off (same connection);
///     - kInternal error frames: transient server-side faults.
///   NOT retried (returned to the caller verbatim):
///     - kInvalidArgument: retrying a malformed query cannot help;
///     - kDeadlineExceeded: the budget is spent, server- or client-side;
///     - kCancelled: the server is draining; the caller picks a new
///       backend.
///
/// Not thread-safe; use one SoidClient per thread.
class SoidClient {
 public:
  explicit SoidClient(SoidClientOptions options)
      : options_(std::move(options)) {}

  /// Retry/backoff accounting, for tests and the load generator.
  struct Stats {
    int64_t attempts = 0;
    int64_t retries = 0;
    int64_t reconnects = 0;
  };

  /// One query with no deadline.
  [[nodiscard]] Result<QueryResponse> Query(const SoiQuery& query) {
    return QueryWithBudget(query, false, 0.0);
  }

  /// One query carrying a latency budget (seconds, relative to server
  /// receipt) on the wire. A non-positive budget is sent as-is: the
  /// server sheds it at admission with kDeadlineExceeded.
  [[nodiscard]] Result<QueryResponse> Query(const SoiQuery& query,
                                            double deadline_seconds) {
    return QueryWithBudget(query, true, deadline_seconds);
  }

  /// Drops the connection; the next Query() reconnects.
  void Disconnect();

  const Stats& stats() const { return stats_; }

 private:
  Result<QueryResponse> QueryWithBudget(const SoiQuery& query,
                                        bool has_deadline,
                                        double deadline_seconds);
  /// One attempt on the current (or a fresh) connection.
  Result<QueryResponse> QueryOnce(const QueryRequest& request);
  Status EnsureConnected();
  /// Reads one full frame (header + payload) off the connection.
  Status ReadFrame(FrameHeader* header, std::string* payload);

  const SoidClientOptions options_;
  Socket socket_;
  bool connected_ = false;
  uint64_t next_request_id_ = 1;
  Stats stats_;
};

}  // namespace serve
}  // namespace soi

#endif  // SOI_SERVE_CLIENT_H_
