#ifndef SOI_SERVE_PROTOCOL_H_
#define SOI_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/soi_query.h"

namespace soi {
namespace serve {

/// The soid wire protocol (DESIGN.md "Serving & overload"): length-
/// prefixed binary frames over a TCP stream, little-endian, doubles as
/// IEEE-754 bit patterns (snapshot/byte_io.h primitives) so a result
/// round-trips bit-exactly — the property the chaos harness's
/// bit-identity gate rests on.
///
/// Frame layout (12-byte header + payload):
///
///   u32 magic = kFrameMagic          fail closed on anything else
///   u8  version = kProtocolVersion   fail closed on anything else
///   u8  type                         FrameType below
///   u16 reserved = 0                 fail closed on nonzero
///   u32 payload_bytes                <= kMaxFramePayloadBytes
///   payload_bytes x u8
///
/// Every decode is bounds-checked and size-capped: garbage on the wire
/// (wrong magic, future version, oversized or truncated payload, trailing
/// bytes, out-of-range enum values) surfaces as a typed kInvalidArgument
/// Status, never a crash or an unbounded allocation. The server answers a
/// malformed frame with one Error frame and closes the connection — a
/// client that cannot frame correctly cannot be trusted to resynchronize
/// mid-stream.
///
/// Exchange model: the client sends Query frames and receives exactly one
/// Result or Error frame per query, stamped with the query's request_id
/// (client-chosen, echoed verbatim) so a pipelining client can match
/// responses out of order.

inline constexpr uint32_t kFrameMagic = 0x51494F53;  // "SOIQ" little-endian
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr uint32_t kFrameHeaderBytes = 12;
/// Caps both sides' frame allocations. Generous for real payloads (a
/// 10k-street result is ~160 KiB) while bounding what a hostile or
/// corrupt length prefix can make a peer allocate.
inline constexpr uint32_t kMaxFramePayloadBytes = 4u << 20;
/// Caps the keyword count a Query frame may carry (validation happens
/// before the vector is reserved).
inline constexpr uint32_t kMaxQueryKeywords = 1u << 16;
/// Caps the street count a Result frame may carry.
inline constexpr uint32_t kMaxResultStreets = 1u << 20;

enum class FrameType : uint8_t {
  kQuery = 1,
  kResult = 2,
  kError = 3,
};

struct FrameHeader {
  FrameType type = FrameType::kQuery;
  uint32_t payload_bytes = 0;
};

/// One query as sent on the wire. `deadline_seconds` is the client's
/// remaining latency budget, relative to frame receipt: NaN/infinite
/// budgets are rejected at decode; a non-positive budget is valid on the
/// wire and means "already expired" — the server sheds it at admission
/// with kDeadlineExceeded before any engine work (the wire-deadline edge
/// case pinned by tests/serve_server_test.cc). has_deadline=false serves
/// with no deadline.
struct QueryRequest {
  uint64_t request_id = 0;
  SoiQuery query;
  bool has_deadline = false;
  double deadline_seconds = 0.0;
};

/// A successful answer: the ranked streets, bit-exact.
struct QueryResponse {
  uint64_t request_id = 0;
  std::vector<RankedStreet> streets;
};

/// A typed failure: the Status taxonomy of DESIGN.md "Serving &
/// overload" (kInvalidArgument / kResourceExhausted / kDeadlineExceeded /
/// kCancelled / kInternal / kIOError), never a torn or silent drop.
struct ErrorResponse {
  uint64_t request_id = 0;
  Status status;
};

/// Encodes header + payload as one contiguous byte string ready to send.
std::string EncodeQueryFrame(const QueryRequest& request);
std::string EncodeResultFrame(const QueryResponse& response);
std::string EncodeErrorFrame(const ErrorResponse& error);

/// Decodes the 12-byte header (fail closed: magic, version, reserved,
/// size cap all checked). `data` must be exactly kFrameHeaderBytes long.
[[nodiscard]] Status DecodeFrameHeader(std::string_view data,
                                       FrameHeader* out);

/// Payload decoders for each frame type; the payload must consume
/// exactly, with no trailing bytes.
[[nodiscard]] Status DecodeQueryPayload(std::string_view payload,
                                        QueryRequest* out);
[[nodiscard]] Status DecodeResultPayload(std::string_view payload,
                                         QueryResponse* out);
[[nodiscard]] Status DecodeErrorPayload(std::string_view payload,
                                        ErrorResponse* out);

}  // namespace serve
}  // namespace soi

#endif  // SOI_SERVE_PROTOCOL_H_
