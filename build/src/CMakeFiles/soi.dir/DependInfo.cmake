
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/soi.dir/common/random.cc.o" "gcc" "src/CMakeFiles/soi.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/soi.dir/common/status.cc.o" "gcc" "src/CMakeFiles/soi.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/soi.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/soi.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/diversify/cell_bounds.cc" "src/CMakeFiles/soi.dir/core/diversify/cell_bounds.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/cell_bounds.cc.o.d"
  "/root/repo/src/core/diversify/exact.cc" "src/CMakeFiles/soi.dir/core/diversify/exact.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/exact.cc.o.d"
  "/root/repo/src/core/diversify/greedy_baseline.cc" "src/CMakeFiles/soi.dir/core/diversify/greedy_baseline.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/greedy_baseline.cc.o.d"
  "/root/repo/src/core/diversify/objective.cc" "src/CMakeFiles/soi.dir/core/diversify/objective.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/objective.cc.o.d"
  "/root/repo/src/core/diversify/st_rel_div.cc" "src/CMakeFiles/soi.dir/core/diversify/st_rel_div.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/st_rel_div.cc.o.d"
  "/root/repo/src/core/diversify/variants.cc" "src/CMakeFiles/soi.dir/core/diversify/variants.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/diversify/variants.cc.o.d"
  "/root/repo/src/core/interest.cc" "src/CMakeFiles/soi.dir/core/interest.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/interest.cc.o.d"
  "/root/repo/src/core/route_recommender.cc" "src/CMakeFiles/soi.dir/core/route_recommender.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/route_recommender.cc.o.d"
  "/root/repo/src/core/soi_algorithm.cc" "src/CMakeFiles/soi.dir/core/soi_algorithm.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/soi_algorithm.cc.o.d"
  "/root/repo/src/core/soi_baseline.cc" "src/CMakeFiles/soi.dir/core/soi_baseline.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/soi_baseline.cc.o.d"
  "/root/repo/src/core/street_photos.cc" "src/CMakeFiles/soi.dir/core/street_photos.cc.o" "gcc" "src/CMakeFiles/soi.dir/core/street_photos.cc.o.d"
  "/root/repo/src/datagen/city_profile.cc" "src/CMakeFiles/soi.dir/datagen/city_profile.cc.o" "gcc" "src/CMakeFiles/soi.dir/datagen/city_profile.cc.o.d"
  "/root/repo/src/datagen/dataset.cc" "src/CMakeFiles/soi.dir/datagen/dataset.cc.o" "gcc" "src/CMakeFiles/soi.dir/datagen/dataset.cc.o.d"
  "/root/repo/src/datagen/photo_generator.cc" "src/CMakeFiles/soi.dir/datagen/photo_generator.cc.o" "gcc" "src/CMakeFiles/soi.dir/datagen/photo_generator.cc.o.d"
  "/root/repo/src/datagen/poi_generator.cc" "src/CMakeFiles/soi.dir/datagen/poi_generator.cc.o" "gcc" "src/CMakeFiles/soi.dir/datagen/poi_generator.cc.o.d"
  "/root/repo/src/datagen/street_grid_generator.cc" "src/CMakeFiles/soi.dir/datagen/street_grid_generator.cc.o" "gcc" "src/CMakeFiles/soi.dir/datagen/street_grid_generator.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/soi.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/soi.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/soi.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/soi.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/geometry/box.cc" "src/CMakeFiles/soi.dir/geometry/box.cc.o" "gcc" "src/CMakeFiles/soi.dir/geometry/box.cc.o.d"
  "/root/repo/src/geometry/distance.cc" "src/CMakeFiles/soi.dir/geometry/distance.cc.o" "gcc" "src/CMakeFiles/soi.dir/geometry/distance.cc.o.d"
  "/root/repo/src/geometry/segment.cc" "src/CMakeFiles/soi.dir/geometry/segment.cc.o" "gcc" "src/CMakeFiles/soi.dir/geometry/segment.cc.o.d"
  "/root/repo/src/grid/global_inverted_index.cc" "src/CMakeFiles/soi.dir/grid/global_inverted_index.cc.o" "gcc" "src/CMakeFiles/soi.dir/grid/global_inverted_index.cc.o.d"
  "/root/repo/src/grid/grid_geometry.cc" "src/CMakeFiles/soi.dir/grid/grid_geometry.cc.o" "gcc" "src/CMakeFiles/soi.dir/grid/grid_geometry.cc.o.d"
  "/root/repo/src/grid/photo_grid_index.cc" "src/CMakeFiles/soi.dir/grid/photo_grid_index.cc.o" "gcc" "src/CMakeFiles/soi.dir/grid/photo_grid_index.cc.o.d"
  "/root/repo/src/grid/poi_grid_index.cc" "src/CMakeFiles/soi.dir/grid/poi_grid_index.cc.o" "gcc" "src/CMakeFiles/soi.dir/grid/poi_grid_index.cc.o.d"
  "/root/repo/src/grid/segment_cell_index.cc" "src/CMakeFiles/soi.dir/grid/segment_cell_index.cc.o" "gcc" "src/CMakeFiles/soi.dir/grid/segment_cell_index.cc.o.d"
  "/root/repo/src/network/network_builder.cc" "src/CMakeFiles/soi.dir/network/network_builder.cc.o" "gcc" "src/CMakeFiles/soi.dir/network/network_builder.cc.o.d"
  "/root/repo/src/network/network_io.cc" "src/CMakeFiles/soi.dir/network/network_io.cc.o" "gcc" "src/CMakeFiles/soi.dir/network/network_io.cc.o.d"
  "/root/repo/src/network/network_stats.cc" "src/CMakeFiles/soi.dir/network/network_stats.cc.o" "gcc" "src/CMakeFiles/soi.dir/network/network_stats.cc.o.d"
  "/root/repo/src/network/road_network.cc" "src/CMakeFiles/soi.dir/network/road_network.cc.o" "gcc" "src/CMakeFiles/soi.dir/network/road_network.cc.o.d"
  "/root/repo/src/network/shortest_path.cc" "src/CMakeFiles/soi.dir/network/shortest_path.cc.o" "gcc" "src/CMakeFiles/soi.dir/network/shortest_path.cc.o.d"
  "/root/repo/src/objects/object_io.cc" "src/CMakeFiles/soi.dir/objects/object_io.cc.o" "gcc" "src/CMakeFiles/soi.dir/objects/object_io.cc.o.d"
  "/root/repo/src/objects/photo.cc" "src/CMakeFiles/soi.dir/objects/photo.cc.o" "gcc" "src/CMakeFiles/soi.dir/objects/photo.cc.o.d"
  "/root/repo/src/objects/poi.cc" "src/CMakeFiles/soi.dir/objects/poi.cc.o" "gcc" "src/CMakeFiles/soi.dir/objects/poi.cc.o.d"
  "/root/repo/src/text/keyword_set.cc" "src/CMakeFiles/soi.dir/text/keyword_set.cc.o" "gcc" "src/CMakeFiles/soi.dir/text/keyword_set.cc.o.d"
  "/root/repo/src/text/term_vector.cc" "src/CMakeFiles/soi.dir/text/term_vector.cc.o" "gcc" "src/CMakeFiles/soi.dir/text/term_vector.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/soi.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/soi.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/soi.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/soi.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
