# Empty compiler generated dependencies file for soi.
# This may be replaced when dependencies are built.
