file(REMOVE_RECURSE
  "CMakeFiles/diversify_quality_test.dir/diversify_quality_test.cc.o"
  "CMakeFiles/diversify_quality_test.dir/diversify_quality_test.cc.o.d"
  "diversify_quality_test"
  "diversify_quality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversify_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
