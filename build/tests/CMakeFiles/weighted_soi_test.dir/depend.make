# Empty dependencies file for weighted_soi_test.
# This may be replaced when dependencies are built.
