file(REMOVE_RECURSE
  "CMakeFiles/weighted_soi_test.dir/weighted_soi_test.cc.o"
  "CMakeFiles/weighted_soi_test.dir/weighted_soi_test.cc.o.d"
  "weighted_soi_test"
  "weighted_soi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_soi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
