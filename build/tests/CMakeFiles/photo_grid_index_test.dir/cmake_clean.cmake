file(REMOVE_RECURSE
  "CMakeFiles/photo_grid_index_test.dir/photo_grid_index_test.cc.o"
  "CMakeFiles/photo_grid_index_test.dir/photo_grid_index_test.cc.o.d"
  "photo_grid_index_test"
  "photo_grid_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
