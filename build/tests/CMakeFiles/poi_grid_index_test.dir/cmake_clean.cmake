file(REMOVE_RECURSE
  "CMakeFiles/poi_grid_index_test.dir/poi_grid_index_test.cc.o"
  "CMakeFiles/poi_grid_index_test.dir/poi_grid_index_test.cc.o.d"
  "poi_grid_index_test"
  "poi_grid_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poi_grid_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
