# Empty dependencies file for poi_grid_index_test.
# This may be replaced when dependencies are built.
