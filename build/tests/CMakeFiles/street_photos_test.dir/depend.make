# Empty dependencies file for street_photos_test.
# This may be replaced when dependencies are built.
