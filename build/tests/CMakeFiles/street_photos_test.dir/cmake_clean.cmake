file(REMOVE_RECURSE
  "CMakeFiles/street_photos_test.dir/street_photos_test.cc.o"
  "CMakeFiles/street_photos_test.dir/street_photos_test.cc.o.d"
  "street_photos_test"
  "street_photos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/street_photos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
