# Empty dependencies file for soi_algorithm_test.
# This may be replaced when dependencies are built.
