file(REMOVE_RECURSE
  "CMakeFiles/soi_algorithm_test.dir/soi_algorithm_test.cc.o"
  "CMakeFiles/soi_algorithm_test.dir/soi_algorithm_test.cc.o.d"
  "soi_algorithm_test"
  "soi_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soi_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
