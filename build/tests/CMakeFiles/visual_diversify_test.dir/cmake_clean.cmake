file(REMOVE_RECURSE
  "CMakeFiles/visual_diversify_test.dir/visual_diversify_test.cc.o"
  "CMakeFiles/visual_diversify_test.dir/visual_diversify_test.cc.o.d"
  "visual_diversify_test"
  "visual_diversify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visual_diversify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
