# Empty compiler generated dependencies file for visual_diversify_test.
# This may be replaced when dependencies are built.
