file(REMOVE_RECURSE
  "CMakeFiles/global_inverted_index_test.dir/global_inverted_index_test.cc.o"
  "CMakeFiles/global_inverted_index_test.dir/global_inverted_index_test.cc.o.d"
  "global_inverted_index_test"
  "global_inverted_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_inverted_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
