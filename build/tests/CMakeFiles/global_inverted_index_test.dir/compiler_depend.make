# Empty compiler generated dependencies file for global_inverted_index_test.
# This may be replaced when dependencies are built.
