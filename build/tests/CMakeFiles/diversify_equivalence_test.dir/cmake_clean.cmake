file(REMOVE_RECURSE
  "CMakeFiles/diversify_equivalence_test.dir/diversify_equivalence_test.cc.o"
  "CMakeFiles/diversify_equivalence_test.dir/diversify_equivalence_test.cc.o.d"
  "diversify_equivalence_test"
  "diversify_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diversify_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
