file(REMOVE_RECURSE
  "CMakeFiles/segment_cell_index_test.dir/segment_cell_index_test.cc.o"
  "CMakeFiles/segment_cell_index_test.dir/segment_cell_index_test.cc.o.d"
  "segment_cell_index_test"
  "segment_cell_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_cell_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
