# Empty compiler generated dependencies file for segment_cell_index_test.
# This may be replaced when dependencies are built.
