file(REMOVE_RECURSE
  "CMakeFiles/grid_geometry_test.dir/grid_geometry_test.cc.o"
  "CMakeFiles/grid_geometry_test.dir/grid_geometry_test.cc.o.d"
  "grid_geometry_test"
  "grid_geometry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
