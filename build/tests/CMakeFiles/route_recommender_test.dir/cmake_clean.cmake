file(REMOVE_RECURSE
  "CMakeFiles/route_recommender_test.dir/route_recommender_test.cc.o"
  "CMakeFiles/route_recommender_test.dir/route_recommender_test.cc.o.d"
  "route_recommender_test"
  "route_recommender_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_recommender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
