# Empty dependencies file for route_recommender_test.
# This may be replaced when dependencies are built.
