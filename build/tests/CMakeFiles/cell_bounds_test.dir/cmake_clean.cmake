file(REMOVE_RECURSE
  "CMakeFiles/cell_bounds_test.dir/cell_bounds_test.cc.o"
  "CMakeFiles/cell_bounds_test.dir/cell_bounds_test.cc.o.d"
  "cell_bounds_test"
  "cell_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
