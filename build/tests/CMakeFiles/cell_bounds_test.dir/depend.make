# Empty dependencies file for cell_bounds_test.
# This may be replaced when dependencies are built.
