file(REMOVE_RECURSE
  "CMakeFiles/soi_baseline_test.dir/soi_baseline_test.cc.o"
  "CMakeFiles/soi_baseline_test.dir/soi_baseline_test.cc.o.d"
  "soi_baseline_test"
  "soi_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soi_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
