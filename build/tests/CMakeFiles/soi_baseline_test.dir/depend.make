# Empty dependencies file for soi_baseline_test.
# This may be replaced when dependencies are built.
