file(REMOVE_RECURSE
  "../bench/ablation_diversify"
  "../bench/ablation_diversify.pdb"
  "CMakeFiles/ablation_diversify.dir/ablation_diversify.cc.o"
  "CMakeFiles/ablation_diversify.dir/ablation_diversify.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diversify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
