# Empty dependencies file for ablation_diversify.
# This may be replaced when dependencies are built.
