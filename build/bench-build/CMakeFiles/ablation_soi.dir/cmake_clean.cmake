file(REMOVE_RECURSE
  "../bench/ablation_soi"
  "../bench/ablation_soi.pdb"
  "CMakeFiles/ablation_soi.dir/ablation_soi.cc.o"
  "CMakeFiles/ablation_soi.dir/ablation_soi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_soi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
