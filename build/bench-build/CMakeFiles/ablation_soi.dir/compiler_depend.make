# Empty compiler generated dependencies file for ablation_soi.
# This may be replaced when dependencies are built.
