file(REMOVE_RECURSE
  "../bench/fig5_tradeoff"
  "../bench/fig5_tradeoff.pdb"
  "CMakeFiles/fig5_tradeoff.dir/fig5_tradeoff.cc.o"
  "CMakeFiles/fig5_tradeoff.dir/fig5_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
