# Empty compiler generated dependencies file for fig5_tradeoff.
# This may be replaced when dependencies are built.
