file(REMOVE_RECURSE
  "../bench/table4_relevant_pois"
  "../bench/table4_relevant_pois.pdb"
  "CMakeFiles/table4_relevant_pois.dir/table4_relevant_pois.cc.o"
  "CMakeFiles/table4_relevant_pois.dir/table4_relevant_pois.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_relevant_pois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
