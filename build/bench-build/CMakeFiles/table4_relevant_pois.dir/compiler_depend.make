# Empty compiler generated dependencies file for table4_relevant_pois.
# This may be replaced when dependencies are built.
