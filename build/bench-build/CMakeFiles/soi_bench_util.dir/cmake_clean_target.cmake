file(REMOVE_RECURSE
  "libsoi_bench_util.a"
)
