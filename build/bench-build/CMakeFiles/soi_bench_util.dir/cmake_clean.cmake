file(REMOVE_RECURSE
  "CMakeFiles/soi_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/soi_bench_util.dir/bench_util.cc.o.d"
  "libsoi_bench_util.a"
  "libsoi_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soi_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
