# Empty compiler generated dependencies file for soi_bench_util.
# This may be replaced when dependencies are built.
