# Empty compiler generated dependencies file for ext_visual_diversify.
# This may be replaced when dependencies are built.
