file(REMOVE_RECURSE
  "../bench/ext_visual_diversify"
  "../bench/ext_visual_diversify.pdb"
  "CMakeFiles/ext_visual_diversify.dir/ext_visual_diversify.cc.o"
  "CMakeFiles/ext_visual_diversify.dir/ext_visual_diversify.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_visual_diversify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
