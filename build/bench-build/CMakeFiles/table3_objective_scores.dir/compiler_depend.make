# Empty compiler generated dependencies file for table3_objective_scores.
# This may be replaced when dependencies are built.
