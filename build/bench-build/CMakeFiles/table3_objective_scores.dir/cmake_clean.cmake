file(REMOVE_RECURSE
  "../bench/table3_objective_scores"
  "../bench/table3_objective_scores.pdb"
  "CMakeFiles/table3_objective_scores.dir/table3_objective_scores.cc.o"
  "CMakeFiles/table3_objective_scores.dir/table3_objective_scores.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_objective_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
