file(REMOVE_RECURSE
  "../bench/table2_effectiveness"
  "../bench/table2_effectiveness.pdb"
  "CMakeFiles/table2_effectiveness.dir/table2_effectiveness.cc.o"
  "CMakeFiles/table2_effectiveness.dir/table2_effectiveness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
