# Empty compiler generated dependencies file for table2_effectiveness.
# This may be replaced when dependencies are built.
