# Empty dependencies file for fig4_soi_performance.
# This may be replaced when dependencies are built.
