file(REMOVE_RECURSE
  "../bench/fig4_soi_performance"
  "../bench/fig4_soi_performance.pdb"
  "CMakeFiles/fig4_soi_performance.dir/fig4_soi_performance.cc.o"
  "CMakeFiles/fig4_soi_performance.dir/fig4_soi_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_soi_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
