# Empty dependencies file for fig6_diversification_performance.
# This may be replaced when dependencies are built.
