file(REMOVE_RECURSE
  "../bench/fig6_diversification_performance"
  "../bench/fig6_diversification_performance.pdb"
  "CMakeFiles/fig6_diversification_performance.dir/fig6_diversification_performance.cc.o"
  "CMakeFiles/fig6_diversification_performance.dir/fig6_diversification_performance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_diversification_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
