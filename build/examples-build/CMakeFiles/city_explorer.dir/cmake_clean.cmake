file(REMOVE_RECURSE
  "../examples/city_explorer"
  "../examples/city_explorer.pdb"
  "CMakeFiles/city_explorer.dir/city_explorer.cpp.o"
  "CMakeFiles/city_explorer.dir/city_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
