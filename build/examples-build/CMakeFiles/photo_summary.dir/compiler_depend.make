# Empty compiler generated dependencies file for photo_summary.
# This may be replaced when dependencies are built.
