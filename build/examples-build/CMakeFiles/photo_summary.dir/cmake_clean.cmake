file(REMOVE_RECURSE
  "../examples/photo_summary"
  "../examples/photo_summary.pdb"
  "CMakeFiles/photo_summary.dir/photo_summary.cpp.o"
  "CMakeFiles/photo_summary.dir/photo_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
