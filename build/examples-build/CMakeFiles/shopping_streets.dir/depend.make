# Empty dependencies file for shopping_streets.
# This may be replaced when dependencies are built.
