file(REMOVE_RECURSE
  "../examples/shopping_streets"
  "../examples/shopping_streets.pdb"
  "CMakeFiles/shopping_streets.dir/shopping_streets.cpp.o"
  "CMakeFiles/shopping_streets.dir/shopping_streets.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shopping_streets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
