# Empty dependencies file for walking_tour.
# This may be replaced when dependencies are built.
