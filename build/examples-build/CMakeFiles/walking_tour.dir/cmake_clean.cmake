file(REMOVE_RECURSE
  "../examples/walking_tour"
  "../examples/walking_tour.pdb"
  "CMakeFiles/walking_tour.dir/walking_tour.cpp.o"
  "CMakeFiles/walking_tour.dir/walking_tour.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walking_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
