#!/usr/bin/env python3
"""soi-lint: project-invariant checks the C++ compiler cannot enforce.

Dependency-free (python3 standard library only). Wired into ctest under
the `lint` label; see DESIGN.md "Static analysis & invariants" for what
each rule protects.

Rules
-----
determinism   No ambient randomness outside src/common/random.cc: no
              std::random_device, rand()/srand(), std:: engine types, or
              time()-derived seeds. Every stochastic component must draw
              from an explicitly seeded soi::Rng, or datasets and
              experiments stop being reproducible.
float-eq      No raw ==/!= against a floating-point literal. Exact
              equality on computed doubles is the bug class behind the
              PR-1 FP-argmax defect; the blessed patterns are comparing
              through an epsilon, or an explicitly suppressed exact
              sentinel check.
io-stream     Library code (src/) must not write to the standard streams
              (std::cout/cerr/clog and wide variants, std::print[ln]) or
              C stdio (printf/fprintf/puts/fputs/fputc/putchar/perror):
              obs/ and common/json_writer own all output, so embedding
              libsoi never spams a host process's streams. Diagnostics
              belong in metrics, the flight recorder, or a Status.
              (check.h's fatal-error reporter is allowlisted.)
naked-new     Every `new` must transfer ownership on the same statement
              (std::unique_ptr/std::shared_ptr construction or .reset).
              Intentionally leaked singletons carry a suppression.
unchecked-io  Serving code (src/serve/) must not discard the return
              value of the raw socket syscalls send/recv/read/write —
              a short write silently truncates a frame and a short read
              silently desyncs the stream. Call through Socket::SendAll
              / Socket::RecvExact (serve/net.h), which loop and return
              a typed Status; a (void)-cast discard counts as a
              violation too.
nested-vector Grid-index headers (src/grid/*.h) must not declare
              std::vector<std::vector<...>> members: the serving indexes
              store flat CSR arenas (common/csr.h), and a nested-vector
              member reintroduces the per-row heap blocks the layout
              work removed. Build-time staging in .cc files is fine.
lock-hygiene  No raw std::mutex / std::lock_guard / std::unique_lock /
              std::scoped_lock / std::condition_variable (or the shared/
              timed/recursive variants) outside common/mutex.h: all
              locking flows through soi::Mutex/MutexLock/CondVar so it
              is visible to both the Clang thread-safety analysis and
              the runtime lock-order graph (analysis/lock_graph.h — its
              own registry lock is the allowlisted exception, since
              instrumenting the instrumenter would recurse).
layering      The src/ include graph must follow the declared layer DAG
              (LAYER_DEPS below): common sits above the analysis
              instrumentation substrate, the domain layers (geometry,
              grid, network, objects, text) above common, core/obs/
              snapshot above those, serve on top. A header including
              upward (core -> serve, say) couples subsystems the
              architecture keeps composable. Exception: any .cc file
              may include the cross-cutting instrumentation layers
              (obs, analysis), whose compile-out contracts keep them
              dependency-safe; headers get no such exception.
include-cycle No cycle in the file-level `#include "..."` graph under
              src/ — a cycle means include order decides what compiles.
headers       (--headers mode) Every src/**/*.h compiles standalone via
              a generated single-include TU, so include order never
              matters and no header leans on a transitive include.

Suppressions
------------
A finding is suppressed by a comment containing `soi-lint: <rule>` on
the offending line or the line directly above it, e.g.

    static Registry* const g = new Registry();  // soi-lint: naked-new

File-level allowlists live in ALLOWLIST below; fixture trees used by the
self-test are excluded entirely (EXCLUDE_DIRS).

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import concurrent.futures
import fnmatch
import json
import os
import re
import subprocess
import sys
import tempfile

# Directories scanned per rule, relative to --root.
RULE_SCOPE = {
    "determinism": ("src", "bench", "tests", "examples"),
    "float-eq": ("src", "bench", "tests", "examples"),
    "io-stream": ("src",),
    "naked-new": ("src",),
    "unchecked-io": ("src/serve",),
    "nested-vector": ("src/grid",),
    "lock-hygiene": ("src",),
}

# Per-rule basename glob: the rule only applies to matching files (both
# in the tree scan and on explicit paths). Rules absent here apply to
# every source file in their scope.
RULE_FILE_GLOB = {
    "nested-vector": "*.h",
}

# Per-rule path allowlist (fnmatch globs against the /-separated path
# relative to --root). The allowlisted owner of each invariant.
ALLOWLIST = {
    "determinism": ["src/common/random.cc"],
    # check.h's fatal-error reporter, and the lock-order detector's
    # fatal violation report (which must not depend on the obs dump
    # path: that path takes locks of its own).
    "io-stream": ["src/common/check.h", "src/analysis/lock_graph.cc"],
    "float-eq": [],
    "naked-new": [],
    "unchecked-io": [],
    "nested-vector": [],
    # mutex.h is the blessed wrapper; lock_graph.{h,cc} implement the
    # detector it reports into and must not instrument themselves.
    "lock-hygiene": [
        "src/common/mutex.h",
        "src/analysis/lock_graph.h",
        "src/analysis/lock_graph.cc",
    ],
}

# Never scanned: lint self-test fixtures (they plant violations).
EXCLUDE_DIRS = ("tests/lint_fixtures",)

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")

SUPPRESS_MARKER = "soi-lint:"

# One finding: (path, line_number, rule, message).

_FLOAT_LITERAL = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?"

RULE_PATTERNS = {
    "determinism": re.compile(
        r"std::random_device|std::mt19937|std::minstd_rand"
        r"|std::default_random_engine|std::ranlux|std::knuth_b"
        r"|\bsrand\s*\(|(?<![\w:.])rand\s*\("
        r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
    ),
    "float-eq": re.compile(
        r"(?:==|!=)\s*" + _FLOAT_LITERAL + r"(?![\w.])"
        r"|" + _FLOAT_LITERAL + r"\s*(?:==|!=)(?!=)"
    ),
    "io-stream": re.compile(
        r"std::(?:cout|cerr|clog|wcout|wcerr|wclog)"
        r"|std::print(?:ln)?\s*\("
        r"|(?<![\w:])printf\s*\(|\bfprintf\s*\("
        r"|(?<![\w:])puts\s*\(|\bfputs\s*\(|\bfputc\s*\("
        r"|(?<![\w:])putchar\s*\(|\bperror\s*\("
    ),
    "naked-new": re.compile(r"\bnew\b(?:\s*\(\s*std::nothrow\s*\))?\s*[\w:<(]"),
    # Case-sensitive and statement-anchored: Socket::SendAll/RecvExact
    # never match, and a call whose value feeds an assignment, condition,
    # or return is a continuation the prev-line check below recognizes.
    "unchecked-io": re.compile(
        r"^\s*(?:\(void\)\s*)?(?:::)?(?:send|recv|read|write)\s*\("
    ),
    "nested-vector": re.compile(r"std::\s*vector\s*<\s*std::\s*vector\s*<"),
    "lock-hygiene": re.compile(
        r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
        r"|shared_mutex|shared_timed_mutex|lock_guard|scoped_lock"
        r"|unique_lock|shared_lock|condition_variable(?:_any)?)\b"
    ),
}

RULE_MESSAGES = {
    "determinism": (
        "ambient randomness; draw from an explicitly seeded soi::Rng "
        "(src/common/random.h) instead"
    ),
    "float-eq": (
        "raw ==/!= against a floating-point literal; compare through an "
        "epsilon, or suppress an exact sentinel check with "
        "'// soi-lint: float-eq'"
    ),
    "io-stream": (
        "library code must not write to stdout/stderr; route output "
        "through obs/ or common/json_writer"
    ),
    "naked-new": (
        "naked new; transfer ownership on the same statement "
        "(make_unique / unique_ptr(new ...) / .reset(new ...))"
    ),
    "unchecked-io": (
        "unchecked send/recv/read/write return value; short I/O "
        "truncates or desyncs the stream — use Socket::SendAll / "
        "Socket::RecvExact (serve/net.h) or handle the count"
    ),
    "nested-vector": (
        "nested-vector storage in a grid-index header; serving indexes "
        "use flat CSR arenas (common/csr.h) — stage nested rows only in "
        "the .cc build path"
    ),
    "lock-hygiene": (
        "raw std:: synchronization primitive; lock through soi::Mutex / "
        "MutexLock / CondVar (common/mutex.h) so the critical section is "
        "visible to the thread-safety analysis and the lock-order graph"
    ),
}

# The declared layer DAG over src/ subdirectories: layer -> layers it
# may include (transitively closed, so membership is one lookup). The
# `analysis` layer is the instrumentation substrate *below* common —
# common/mutex.h includes analysis/lock_graph.h — and depends on the
# C++ standard library only. Adding a new src/ directory requires
# declaring it here; an undeclared layer is itself a finding.
LAYER_DEPS = {
    "analysis": set(),
    "common": {"analysis"},
    "geometry": {"analysis", "common"},
    "text": {"analysis", "common"},
    "obs": {"analysis", "common"},
    "network": {"analysis", "common", "geometry"},
    "objects": {"analysis", "common", "geometry", "text"},
    "grid": {"analysis", "common", "geometry", "network", "objects", "text"},
    "core": {"analysis", "common", "geometry", "grid", "network", "objects",
             "obs", "text"},
    "datagen": {"analysis", "common", "geometry", "grid", "network",
                "objects", "text"},
    "snapshot": {"analysis", "common", "datagen", "geometry", "grid",
                 "network", "objects", "obs", "text"},
    "eval": {"analysis", "common", "core", "geometry", "grid", "network",
             "objects", "obs", "text"},
    "serve": {"analysis", "common", "core", "datagen", "geometry", "grid",
              "network", "objects", "obs", "snapshot", "text"},
    "ingest": {"analysis", "common", "datagen", "geometry", "grid",
               "network", "objects", "obs", "snapshot", "text"},
}

# Cross-cutting instrumentation layers any .cc file may include: their
# compile-out contracts (obs/obs.h, analysis/lock_graph.h) keep them
# dependency-safe, and instrumenting a low layer (thread_pool.cc's queue
# gauges, say) must not force that layer above obs in the DAG. Headers
# get no such exception — a header include is an interface dependency.
INSTRUMENTATION_LAYERS = ("analysis", "obs")

_INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
# Laxer form for comment-stripped lines (the stripper blanks the quoted
# path, closing quote included).
_INCLUDE_DIRECTIVE = re.compile(r'^\s*#\s*include\s*"')

# A `new` is owned if the statement context shows an immediate wrapper.
_OWNED_NEW = re.compile(r"unique_ptr\s*<|shared_ptr\s*<|\.reset\s*\(")

# A syscall starting a line is still value-checked when it continues the
# previous line (assignment, condition, argument list, return, ...).
_CONTINUATION_PREV = re.compile(r"(?:[=(,?:+\-*/%<>|&!]|\breturn)\s*$")


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literal contents
    blanked (newlines preserved), so patterns never match inside them."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append(" " * 0)
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim".
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n if end == -1 else end + len(closer)
            out.extend(ch if ch == "\n" else " " for ch in text[i:end])
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote)
            out.extend(ch if ch == "\n" else " " for ch in text[i + 1 : j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def is_suppressed(raw_lines, line_index, rule):
    """True if the offending line or the one above carries the marker."""
    for idx in (line_index, line_index - 1):
        if 0 <= idx < len(raw_lines):
            line = raw_lines[idx]
            marker = line.find(SUPPRESS_MARKER)
            if marker != -1 and rule in line[marker:]:
                return True
    return False


def lint_file(path, rel_path, rules):
    """Runs the given text rules over one file; returns findings."""
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [(rel_path, 0, "io-error", str(e))]
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    findings = []
    basename = os.path.basename(rel_path)
    for rule in rules:
        file_glob = RULE_FILE_GLOB.get(rule)
        if file_glob and not fnmatch.fnmatch(basename, file_glob):
            continue
        if any(fnmatch.fnmatch(rel_path, g) for g in ALLOWLIST[rule]):
            continue
        pattern = RULE_PATTERNS[rule]
        for i, line in enumerate(code_lines):
            if not pattern.search(line):
                continue
            if rule == "naked-new":
                prev = code_lines[i - 1] if i > 0 else ""
                if _OWNED_NEW.search(prev + " " + line):
                    continue
            if rule == "unchecked-io":
                prev = code_lines[i - 1] if i > 0 else ""
                if _CONTINUATION_PREV.search(prev):
                    continue
            if is_suppressed(raw_lines, i, rule):
                continue
            findings.append((rel_path, i + 1, rule, RULE_MESSAGES[rule]))
    return findings


def iter_source_files(root, subdirs):
    for subdir in subdirs:
        top = os.path.join(root, subdir)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if any(
                rel_dir == ex or rel_dir.startswith(ex + "/")
                for ex in EXCLUDE_DIRS
            ):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def run_text_rules(root, explicit_paths=None, rules=None):
    """Lints the repo tree (or explicit files, all rules) and returns
    findings sorted by path/line."""
    rules = list(rules or RULE_PATTERNS)
    findings = []
    if explicit_paths:
        for path in explicit_paths:
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            findings.extend(lint_file(path, rel, rules))
    else:
        seen = set()
        for rule in rules:
            for path in iter_source_files(root, RULE_SCOPE[rule]):
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                key = (rel, rule)
                if key in seen:
                    continue
                seen.add(key)
                findings.extend(lint_file(path, rel, [rule]))
    return sorted(findings)


def _src_include_graph(root):
    """Extracts the `#include "..."` graph under root/src.

    Returns (nodes, includes) where nodes maps each source file's
    src-relative path (e.g. "core/query_engine.cc") to its absolute
    path, and includes maps it to a list of (line_number, target)
    pairs for every quoted include that resolves to a file under src/.
    Comments and strings are stripped first, so a commented-out include
    never counts.
    """
    src_root = os.path.join(root, "src")
    nodes = {}
    includes = {}
    for path in iter_source_files(root, ("src",)):
        rel = os.path.relpath(path, src_root).replace(os.sep, "/")
        nodes[rel] = path
    for rel, path in nodes.items():
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        targets = []
        stripped = strip_comments_and_strings(text).splitlines()
        for i, line in enumerate(text.splitlines()):
            # The include path itself is a string literal, so the target
            # must come from the raw line; the stripped line (quoted
            # content blanked, directive kept) gates out commented-out
            # includes.
            match = _INCLUDE.match(line)
            if not match:
                continue
            if i >= len(stripped) or not _INCLUDE_DIRECTIVE.match(stripped[i]):
                continue
            target = match.group(1)
            if target in nodes:
                targets.append((i + 1, target))
        includes[rel] = targets
    return nodes, includes


def _layer_of(rel):
    """Layer of a src-relative path: its first directory component."""
    return rel.split("/", 1)[0] if "/" in rel else ""


def run_layering_rules(root):
    """Enforces the layer DAG and rejects file-level include cycles over
    root/src; returns findings shaped like the text rules'."""
    nodes, includes = _src_include_graph(root)
    findings = []

    for rel in sorted(includes):
        layer = _layer_of(rel)
        allowed = LAYER_DEPS.get(layer)
        src_rel = "src/" + rel
        if allowed is None:
            findings.append((
                src_rel,
                1,
                "layering",
                "layer '%s' is not declared in the layer DAG "
                "(tools/soi_lint.py LAYER_DEPS); declare its allowed "
                "dependencies before adding code to it" % layer,
            ))
            continue
        for line, target in includes[rel]:
            target_layer = _layer_of(target)
            if target_layer == layer or target_layer in allowed:
                continue
            if rel.endswith(".cc") and target_layer in INSTRUMENTATION_LAYERS:
                continue
            findings.append((
                src_rel,
                line,
                "layering",
                "layer '%s' must not include layer '%s' (%s); the "
                "declared DAG is in tools/soi_lint.py LAYER_DEPS"
                % (layer, target_layer, target),
            ))

    # File-level include cycles, reported once per cycle on its first
    # file in path order. Colors: 0 unvisited, 1 on the DFS stack,
    # 2 finished.
    color = {}
    stack_pos = {}

    def visit(rel, stack):
        color[rel] = 1
        stack_pos[rel] = len(stack)
        stack.append(rel)
        for _, target in includes.get(rel, ()):
            state = color.get(target, 0)
            if state == 0:
                visit(target, stack)
            elif state == 1:
                cycle = stack[stack_pos[target]:] + [target]
                anchor = min(cycle[:-1])
                findings.append((
                    "src/" + anchor,
                    1,
                    "include-cycle",
                    "include cycle: " + " -> ".join(cycle),
                ))
        stack.pop()
        del stack_pos[rel]
        color[rel] = 2

    for rel in sorted(includes):
        if color.get(rel, 0) == 0:
            visit(rel, [])
    return sorted(set(findings))


def check_header(compiler, std, include_dir, root, header):
    """Compiles one header standalone; returns a finding or None."""
    rel = os.path.relpath(header, root).replace(os.sep, "/")
    include_rel = os.path.relpath(header, include_dir).replace(os.sep, "/")
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cc", prefix="soi_hdr_", delete=False
    ) as tu:
        # Include twice: catches both missing includes and a missing or
        # broken include guard.
        tu.write('#include "%s"\n#include "%s"\n' % (include_rel, include_rel))
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [
                compiler,
                "-std=" + std,
                "-fsyntax-only",
                "-Wall",
                "-Wextra",
                "-I",
                include_dir,
                "-x",
                "c++",
                tu_path,
            ],
            capture_output=True,
            text=True,
        )
    finally:
        os.unlink(tu_path)
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout).strip().splitlines()
        summary = detail[0] if detail else "compilation failed"
        return (rel, 1, "headers", "not self-contained: " + summary)
    return None


def run_header_rule(root, compiler, std, headers=None, include_dir=None):
    include_dir = include_dir or os.path.join(root, "src")
    if headers is None:
        headers = [
            p
            for p in iter_source_files(root, ("src",))
            if p.endswith(".h")
        ]
    findings = []
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=os.cpu_count() or 4
    ) as pool:
        for result in pool.map(
            lambda h: check_header(compiler, std, include_dir, root, h),
            headers,
        ):
            if result is not None:
                findings.append(result)
    return sorted(findings)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".", help="repository root (default: cwd)"
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated subset of rules (default: all text rules)",
    )
    parser.add_argument(
        "--headers",
        action="store_true",
        help="run the header self-containment check instead of text rules",
    )
    parser.add_argument(
        "--compiler",
        default=os.environ.get("SOI_LINT_CXX", "c++"),
        help="C++ compiler for --headers (default: $SOI_LINT_CXX or c++)",
    )
    parser.add_argument(
        "--std", default="c++20", help="-std= value for --headers"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array of {rule, file, line, message} "
        "objects (machine-readable for check.sh / CI diffing); exit "
        "status is unchanged",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="explicit files to lint with every text rule (default: the "
        "per-rule repo scopes)",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print("soi-lint: no such root: %s" % root, file=sys.stderr)
        return 2

    structural_rules = ("layering", "include-cycle")
    if args.headers:
        findings = run_header_rule(root, args.compiler, args.std)
    else:
        rules = args.rules.split(",") if args.rules else None
        structural = list(structural_rules)
        if rules:
            unknown = [
                r
                for r in rules
                if r not in RULE_PATTERNS and r not in structural_rules
            ]
            if unknown:
                print(
                    "soi-lint: unknown rules: %s" % ", ".join(unknown),
                    file=sys.stderr,
                )
                return 2
            structural = [r for r in rules if r in structural_rules]
            rules = [r for r in rules if r in RULE_PATTERNS] or None
            if rules is None and structural:
                findings = []
            else:
                findings = run_text_rules(root, args.paths or None, rules)
        else:
            findings = run_text_rules(root, args.paths or None, None)
        # The structural audit covers the whole src/ tree; explicit-path
        # invocations are file-scoped by construction and skip it.
        if not args.paths and structural:
            layer_findings = run_layering_rules(root)
            findings = sorted(
                findings
                + [f for f in layer_findings if f[2] in structural]
            )

    if args.json:
        print(
            json.dumps(
                [
                    {"rule": rule, "file": rel, "line": line,
                     "message": message}
                    for rel, line, rule, message in findings
                ],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for rel, line, rule, message in findings:
            print("%s:%d: [%s] %s" % (rel, line, rule, message))
    if findings:
        print(
            "soi-lint: %d finding(s); see tools/soi_lint.py docstring "
            "for the rule rationale and suppression syntax" % len(findings),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
