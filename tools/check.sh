#!/usr/bin/env bash
# The one-command pre-merge gate: configures, builds, and tests the
# `default`, `check`, `tsan`, and `fault` presets in sequence, failing
# on the first error. Covers, in order:
#   default — the tier-1 suite plus soi-lint (ctest -L lint runs inside),
#   check   — the static-analysis build (Clang thread-safety as -Werror;
#             on non-Clang compilers the annotations are no-ops and the
#             preset degrades to a plain rebuild),
#   tsan    — the full suite under ThreadSanitizer (perf smoke excluded:
#             sanitizer timings would trip the scaling floors),
#   fault   — fault-injection hooks armed under ASan+UBSan (ditto).
# Afterwards it re-runs the snapshot, obs, and serving labels under the
# builds that give each suite its strongest guarantee (see below).
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

for preset in default check tsan fault; do
  echo "==== [$preset] configure ===="
  cmake --preset "$preset"
  echo "==== [$preset] build ===="
  cmake --build --preset "$preset" -j "$JOBS"
  echo "==== [$preset] test ===="
  ctest --preset "$preset" -j "$JOBS" --output-on-failure "$@"
done

# The snapshot suite runs inside the full sweeps above; re-run it by
# label under the fault build so persistence corruption handling is
# exercised with fault points armed-able even when extra ctest args
# filtered it out of the main pass.
echo "==== [fault-snapshot] test ===="
ctest --preset fault-snapshot -j "$JOBS" --output-on-failure

# Observability suite, same rationale: the flight-recorder / dump /
# exemplar tests get a guaranteed pass in the default build and a
# guaranteed race check under TSan (concurrent append and snapshot
# consistency are exactly the paths a data race would hide in), even
# when extra ctest args filtered them out of the main sweeps.
echo "==== [obs] test ===="
ctest --preset obs -j "$JOBS" --output-on-failure
echo "==== [tsan-obs] test ===="
ctest --preset tsan-obs -j "$JOBS" --output-on-failure

# Serving suite, same rationale, across three builds: plain (protocol /
# backpressure / drain semantics), TSan (the accept/reader/worker/drain
# thread choreography is exactly where a data race would hide), and
# fault (the chaos soak with serve.* fault points actually armed, under
# ASan). Guaranteed passes even when extra ctest args filtered the
# label out of the main sweeps.
echo "==== [serving] test ===="
ctest --preset serving -j "$JOBS" --output-on-failure
echo "==== [tsan-serving] test ===="
ctest --preset tsan-serving -j "$JOBS" --output-on-failure
echo "==== [fault-serving] test ===="
ctest --preset fault-serving -j "$JOBS" --output-on-failure

# Perf smoke, same rationale: guaranteed one run in the un-sanitized
# default build with its scaling gates evaluated, even when extra ctest
# args filtered it above. Run serially — a parallel ctest sweep would
# perturb the timings the gates check.
echo "==== [perf] test ===="
ctest --preset perf --output-on-failure

echo "==== all presets green ===="
