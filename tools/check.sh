#!/usr/bin/env bash
# The one-command pre-merge gate: configures, builds, and tests every
# gate preset in sequence, then re-runs the label suites under the
# builds that give each its strongest guarantee. Presets, in order:
#   default       — the tier-1 suite plus soi-lint (ctest -L lint runs
#                   inside),
#   check         — the static-analysis build (Clang thread-safety as
#                   -Werror; on non-Clang compilers the annotations are
#                   no-ops and the preset degrades to a plain rebuild),
#   ubsan         — the full suite under UBSan with
#                   -fno-sanitize-recover=all (any finding aborts),
#   tsan          — the full suite under ThreadSanitizer (perf smoke
#                   excluded: sanitizer timings would trip the scaling
#                   floors),
#   fault         — fault-injection hooks armed under ASan+UBSan,
#   deadlock      — the full suite with the runtime lock-order graph
#                   armed and fatal-on-violation (the report-clean gate),
#   tsan-deadlock — the same suite with TSan watching the lock-graph
#                   instrumentation itself for races.
#
# Every step streams its output and also logs to $LOG_DIR/<step>.log.
# On the first failing step the script prints the pass/fail summary
# table and the failing step's log path, then exits with that step's
# status — explicitly, not via `set -e` fallout, so the table and the
# pointer always appear.
# Usage: tools/check.sh [extra ctest args...]
set -uo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
LOG_DIR="${SOI_CHECK_LOG_DIR:-.check-logs}"
mkdir -p "$LOG_DIR"

EXTRA_CTEST_ARGS=("$@")

STEP_NAMES=()
STEP_RESULTS=()

print_summary() {
  echo
  echo "==== check.sh summary ===="
  printf '%-28s %s\n' "step" "result"
  printf '%-28s %s\n' "----" "------"
  local i
  for i in "${!STEP_NAMES[@]}"; do
    printf '%-28s %s\n' "${STEP_NAMES[$i]}" "${STEP_RESULTS[$i]}"
  done
}

run_step() {
  local name="$1"
  shift
  local log="$LOG_DIR/$name.log"
  echo "==== [$name] ===="
  local status=0
  "$@" 2>&1 | tee "$log" || status=$?
  if [ "$status" -eq 0 ]; then
    STEP_NAMES+=("$name")
    STEP_RESULTS+=("pass")
  else
    STEP_NAMES+=("$name")
    STEP_RESULTS+=("FAIL (exit $status)")
    print_summary
    echo
    echo "check.sh: FAILED at step '$name'; full log: $log" >&2
    exit "$status"
  fi
}

for preset in default check ubsan tsan fault deadlock tsan-deadlock; do
  run_step "$preset-configure" cmake --preset "$preset"
  run_step "$preset-build" cmake --build --preset "$preset" -j "$JOBS"
  run_step "$preset-test" ctest --preset "$preset" -j "$JOBS" \
      --output-on-failure ${EXTRA_CTEST_ARGS[@]+"${EXTRA_CTEST_ARGS[@]}"}
done

# The snapshot suite runs inside the full sweeps above; re-run it by
# label under the fault build so persistence corruption handling is
# exercised with fault points armed-able even when extra ctest args
# filtered it out of the main pass.
run_step fault-snapshot ctest --preset fault-snapshot -j "$JOBS" \
    --output-on-failure

# Observability suite, same rationale: the flight-recorder / dump /
# exemplar tests get a guaranteed pass in the default build and a
# guaranteed race check under TSan (concurrent append and snapshot
# consistency are exactly the paths a data race would hide in), even
# when extra ctest args filtered them out of the main sweeps.
run_step obs ctest --preset obs -j "$JOBS" --output-on-failure
run_step tsan-obs ctest --preset tsan-obs -j "$JOBS" --output-on-failure

# Serving suite, same rationale, across three builds: plain (protocol /
# backpressure / drain semantics), TSan (the accept/reader/worker/drain
# thread choreography is exactly where a data race would hide), and
# fault (the chaos soak with serve.* fault points actually armed, under
# ASan). Guaranteed passes even when extra ctest args filtered the
# label out of the main sweeps.
run_step serving ctest --preset serving -j "$JOBS" --output-on-failure
run_step tsan-serving ctest --preset tsan-serving -j "$JOBS" \
    --output-on-failure
run_step fault-serving ctest --preset fault-serving -j "$JOBS" \
    --output-on-failure

# Ingest suite, same rationale, across the same three builds: plain
# (epoch visibility, whole-batch validation, bit-identity vs cold
# rebuilds), TSan (the writer/compactor/reader RCU choreography is
# exactly where a publication race would hide), and fault (the
# failed-publish cases — "ingest.apply_delta" / "ingest.compact" —
# actually armed, under ASan). Guaranteed passes even when extra ctest
# args filtered the label out of the main sweeps.
run_step ingest ctest --preset ingest -j "$JOBS" --output-on-failure
run_step tsan-ingest ctest --preset tsan-ingest -j "$JOBS" \
    --output-on-failure
run_step fault-ingest ctest --preset fault-ingest -j "$JOBS" \
    --output-on-failure

# Perf smoke, same rationale: guaranteed one run in the un-sanitized
# default build with its scaling gates evaluated, even when extra ctest
# args filtered it above. Run serially — a parallel ctest sweep would
# perturb the timings the gates check.
run_step perf ctest --preset perf --output-on-failure

print_summary
echo
echo "==== all presets green ===="
