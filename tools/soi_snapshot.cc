// Snapshot management CLI (DESIGN.md "Persistence & warm start").
//
//   soi_snapshot create --out=<path> [--city=London] [--scale=0.05]
//                       [--cell-size=0.0005] [--eps=0.0004,0.0005]
//       Generates the named preset city, builds its index suite and the
//       requested eps-augmented maps, and writes a snapshot.
//
//   soi_snapshot inspect <path>
//       Prints the snapshot header, counts, eps values, and per-section
//       byte/CRC table as JSON (verifies every CRC on the way).
//
//   soi_snapshot verify <path>
//       Full LoadSnapshot: decodes and revalidates every section,
//       rebuilds the index suite. Exit 0 iff the snapshot is loadable.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/json_writer.h"
#include "core/query_engine.h"
#include "datagen/city_profile.h"
#include "datagen/dataset.h"
#include "snapshot/snapshot.h"

namespace soi {
namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  soi_snapshot create --out=<path> [--city=London] "
         "[--scale=0.05]\n"
         "                      [--cell-size=0.0005] "
         "[--eps=0.0004,0.0005]\n"
         "  soi_snapshot inspect <path>\n"
         "  soi_snapshot verify <path>\n";
  return 2;
}

int Fail(const Status& status) {
  std::cerr << "soi_snapshot: " << status.ToString() << "\n";
  return 1;
}

struct CreateOptions {
  std::string city = "London";
  double scale = 0.05;
  double cell_size = 0.0005;
  std::vector<double> eps_values = {0.0005};
  std::string out;
};

int RunCreate(const std::vector<std::string>& args) {
  CreateOptions options;
  for (const std::string& arg : args) {
    if (arg.rfind("--city=", 0) == 0) {
      options.city = arg.substr(7);
    } else if (arg.rfind("--scale=", 0) == 0) {
      Result<double> value = ParseDouble(arg.substr(8));
      if (!value.ok()) return Fail(value.status());
      options.scale = value.ValueOrDie();
    } else if (arg.rfind("--cell-size=", 0) == 0) {
      Result<double> value = ParseDouble(arg.substr(12));
      if (!value.ok()) return Fail(value.status());
      options.cell_size = value.ValueOrDie();
    } else if (arg.rfind("--eps=", 0) == 0) {
      options.eps_values.clear();
      for (const std::string& field : Split(arg.substr(6), ',')) {
        Result<double> value = ParseDouble(field);
        if (!value.ok()) return Fail(value.status());
        options.eps_values.push_back(value.ValueOrDie());
      }
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out = arg.substr(6);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return Usage();
    }
  }
  if (options.out.empty()) {
    std::cerr << "create requires --out=<path>\n";
    return Usage();
  }

  const CityProfile* profile = nullptr;
  std::vector<CityProfile> profiles = AllCityProfiles(options.scale);
  for (const CityProfile& candidate : profiles) {
    if (candidate.name == options.city) profile = &candidate;
  }
  if (profile == nullptr) {
    std::cerr << "unknown city '" << options.city << "' (presets:";
    for (const CityProfile& candidate : profiles) {
      std::cerr << " " << candidate.name;
    }
    std::cerr << ")\n";
    return 2;
  }

  Result<Dataset> dataset = GenerateCity(*profile);
  if (!dataset.ok()) return Fail(dataset.status());
  std::unique_ptr<DatasetIndexes> indexes =
      BuildIndexes(dataset.ValueOrDie(), options.cell_size);

  std::vector<std::unique_ptr<EpsAugmentedMaps>> maps;
  SnapshotContents contents;
  contents.dataset = &dataset.ValueOrDie();
  contents.indexes = indexes.get();
  for (double eps : options.eps_values) {
    maps.push_back(std::make_unique<EpsAugmentedMaps>(
        indexes->segment_cells, eps));
    contents.eps_maps.push_back(maps.back().get());
  }

  Status saved = SaveSnapshotToFile(contents, options.out);
  if (!saved.ok()) return Fail(saved);
  Result<SnapshotInfo> info = InspectSnapshotFile(options.out);
  if (!info.ok()) return Fail(info.status());
  std::cout << "wrote " << options.out << " ("
            << info.ValueOrDie().total_bytes << " bytes, "
            << info.ValueOrDie().sections.size() << " sections)\n";
  return 0;
}

int RunInspect(const std::string& path) {
  Result<SnapshotInfo> result = InspectSnapshotFile(path);
  if (!result.ok()) return Fail(result.status());
  const SnapshotInfo& info = result.ValueOrDie();
  JsonWriter json(&std::cout);
  json.BeginObject();
  json.KeyValue("format_version",
                static_cast<int64_t>(info.format_version));
  json.KeyValue("dataset", info.dataset_name);
  json.KeyValue("num_vertices", info.num_vertices);
  json.KeyValue("num_segments", info.num_segments);
  json.KeyValue("num_streets", info.num_streets);
  json.KeyValue("num_pois", info.num_pois);
  json.KeyValue("num_photos", info.num_photos);
  json.KeyValue("num_keywords", info.num_keywords);
  json.KeyValue("ingest_epoch", info.ingest_epoch);
  json.KeyValue("ingest_applied_ops", info.ingest_applied_ops);
  json.Key("eps_values");
  json.BeginArray();
  for (double eps : info.eps_values) json.Double(eps);
  json.EndArray();
  json.Key("sections");
  json.BeginArray();
  for (const SnapshotSectionInfo& section : info.sections) {
    json.BeginObject();
    json.KeyValue("name", section.name);
    json.KeyValue("bytes", section.bytes);
    json.KeyValue("crc32", static_cast<int64_t>(section.crc32));
    json.EndObject();
  }
  json.EndArray();
  json.KeyValue("total_bytes", info.total_bytes);
  json.EndObject();
  std::cout << "\n";
  return 0;
}

int RunVerify(const std::string& path) {
  Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(path);
  if (!loaded.ok()) return Fail(loaded.status());
  const LoadedSnapshot& snapshot = loaded.ValueOrDie();
  std::cout << "ok: " << path << " (" << snapshot.dataset->name << ", "
            << snapshot.dataset->network.num_streets() << " streets, "
            << snapshot.eps_maps.size() << " cached eps maps)\n";
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "create") return RunCreate(args);
  if (command == "inspect" && args.size() == 1) return RunInspect(args[0]);
  if (command == "verify" && args.size() == 1) return RunVerify(args[0]);
  return Usage();
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Main(argc, argv); }
