// Introspection CLI for the per-query observability plane (DESIGN.md
// "Observability"): exercises obs::DumpState end to end and validates
// the state files it (or the SIGUSR1 hook of any serving process)
// produces.
//
//   soi_obs dump [--city=Vienna] [--scale=0.05] [--threads=4]
//                [--batches=1] [--out=SOI_STATE.json]
//       Generates the named preset city, serves a mixed query workload
//       through a QueryEngine, and writes the DumpState JSON — metrics
//       with exemplar-stamped latency histograms plus the flight
//       recorder's recent/slowest QueryRecords. The SIGUSR1 dump hook is
//       installed on the same path, so signalling a long `--batches` run
//       mid-flight snapshots its live state:
//
//         soi_obs dump --batches=500 & kill -USR1 $!
//
//   soi_obs check <path>
//       Validates that <path> is well-formed JSON (exit 0 iff valid) and
//       prints a one-line summary. Works on SOI_STATE*.json and any
//       BENCH_*.json.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_util.h"
#include "common/string_util.h"
#include "core/query_engine.h"
#include "datagen/city_profile.h"
#include "datagen/dataset.h"
#include "obs/dump.h"
#include "obs/obs.h"

namespace soi {
namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  soi_obs dump [--city=Vienna] [--scale=0.05] [--threads=4]\n"
         "               [--batches=1] [--out=SOI_STATE.json]\n"
         "  soi_obs check <path>\n";
  return 2;
}

int Fail(const Status& status) {
  std::cerr << "soi_obs: " << status.ToString() << "\n";
  return 1;
}

struct DumpOptions {
  std::string city = "Vienna";
  double scale = 0.05;
  int threads = 4;
  int batches = 1;
  std::string out = "SOI_STATE.json";
};

// The throughput bench's mixed workload shape, at CLI scale: every
// combination of eps x k x |Psi| once per batch.
std::vector<SoiQuery> MakeBatch(const Dataset& dataset) {
  static const char* kTable4Keywords[] = {"religion", "education", "food",
                                          "services"};
  std::vector<SoiQuery> batch;
  for (double eps : {0.0004, 0.0005, 0.0007}) {
    for (int32_t k : {10, 50}) {
      for (int psi = 1; psi <= 4; ++psi) {
        std::vector<KeywordId> ids;
        for (int i = 0; i < psi; ++i) {
          KeywordId id = dataset.vocabulary.Find(kTable4Keywords[i]);
          if (id != kInvalidKeyword) ids.push_back(id);
        }
        if (ids.empty()) continue;
        SoiQuery query;
        query.keywords = KeywordSet(std::move(ids));
        query.k = k;
        query.eps = eps;
        batch.push_back(std::move(query));
      }
    }
  }
  return batch;
}

int RunDump(const std::vector<std::string>& args) {
  DumpOptions options;
  for (const std::string& arg : args) {
    if (arg.rfind("--city=", 0) == 0) {
      options.city = arg.substr(7);
    } else if (arg.rfind("--scale=", 0) == 0) {
      auto value = ParseDouble(arg.substr(8));
      if (!value.ok()) return Fail(value.status());
      options.scale = value.ValueOrDie();
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::stoi(arg.substr(10));
    } else if (arg.rfind("--batches=", 0) == 0) {
      options.batches = std::stoi(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      options.out = arg.substr(6);
    } else {
      return Usage();
    }
  }
  if (options.threads < 1 || options.batches < 1) return Usage();

  // Live introspection while the workload runs: SIGUSR1 -> state file.
  Status hook = obs::InstallSignalDump(options.out);
  if (!hook.ok()) return Fail(hook);

  const CityProfile* profile = nullptr;
  std::vector<CityProfile> profiles = AllCityProfiles(options.scale);
  for (const CityProfile& candidate : profiles) {
    if (candidate.name == options.city) profile = &candidate;
  }
  if (profile == nullptr) {
    return Fail(Status::InvalidArgument("unknown city " + options.city));
  }
  std::cerr << "[soi_obs] generating " << options.city
            << " (scale=" << options.scale << ")...\n";
  Result<Dataset> dataset = GenerateCity(*profile);
  if (!dataset.ok()) return Fail(dataset.status());
  std::unique_ptr<DatasetIndexes> indexes =
      BuildIndexes(dataset.ValueOrDie(), 0.0005);

  QueryEngineOptions engine_options;
  engine_options.num_threads = options.threads;
  QueryEngine engine(dataset.ValueOrDie().network, indexes->poi_grid,
                     indexes->global_index, indexes->segment_cells,
                     engine_options);
  std::vector<SoiQuery> batch = MakeBatch(dataset.ValueOrDie());
  if (batch.empty()) {
    return Fail(Status::Internal("generated city lacks Table 4 keywords"));
  }
  std::cerr << "[soi_obs] serving " << options.batches << " batch(es) of "
            << batch.size() << " queries...\n";
  for (int i = 0; i < options.batches; ++i) {
    std::vector<Result<SoiResult>> results = engine.TryRunBatch(batch);
    for (const Result<SoiResult>& result : results) {
      if (!result.ok()) return Fail(result.status());
    }
  }

  Status written = obs::WriteStateFile(options.out);
  if (!written.ok()) return Fail(written);
  std::cerr << "[soi_obs] wrote " << options.out << "\n";
  return 0;
}

int RunCheck(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) {
    return Fail(Status::IOError("cannot read " + path));
  }
  std::ostringstream content;
  content << file.rdbuf();
  std::string text = content.str();
  Status valid = ValidateJson(text);
  if (!valid.ok()) return Fail(valid);
  size_t records = 0;
  for (size_t pos = text.find("\"query_id\""); pos != std::string::npos;
       pos = text.find("\"query_id\"", pos + 1)) {
    ++records;
  }
  std::cout << path << ": valid JSON, " << text.size() << " bytes, "
            << records << " query record(s)\n";
  return 0;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return Usage();
  if (args[0] == "dump") {
    return RunDump({args.begin() + 1, args.end()});
  }
  if (args[0] == "check" && args.size() == 2) {
    return RunCheck(args[1]);
  }
  return Usage();
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Main(argc, argv); }
