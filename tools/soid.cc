// soid — the fault-tolerant serving front-end (DESIGN.md "Serving &
// overload"): a TCP server speaking the serve/protocol.h binary framing
// over one warm-started QueryEngine.
//
//   soid --snapshot=PATH [--host=127.0.0.1] [--port=0] [--workers=4]
//        [--queue=64] [--max-conns=64] [--read-timeout=10]
//        [--write-timeout=10] [--drain-deadline=5]
//        [--state-file=SOI_SERVE_STATE.json]
//   soid --city=Vienna [--scale=0.05] [...same serving flags]
//
// Crash-safe startup: with --snapshot, the index suite and eps cache are
// restored from the file and the engine warm-starts; a corrupt or
// unreadable snapshot refuses to serve with a typed exit (code 3), it
// never serves partial state. --city generates a synthetic city instead
// (for manual poking without a snapshot on hand).
//
// Signals: SIGTERM begins a graceful drain (stop accepting, finish or
// cancel in-flight work within --drain-deadline, flush the obs state
// file); SIGUSR1 dumps live obs state to the same file mid-serve. Both
// hooks ride the shared common/signal_watch.h mask, so they coexist in
// one process.
//
// Exit codes: 0 clean drain; 1 drain cancelled in-flight work or another
// runtime error; 2 usage; 3 snapshot corrupt/unreadable.

#include <signal.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/signal_watch.h"
#include "common/string_util.h"
#include "core/query_engine.h"
#include "datagen/city_profile.h"
#include "datagen/dataset.h"
#include "obs/dump.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"

namespace soi {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitBadSnapshot = 3;

int Usage() {
  std::cerr
      << "usage:\n"
         "  soid --snapshot=PATH | --city=NAME [--scale=0.05]\n"
         "       [--host=127.0.0.1] [--port=0] [--workers=4] [--queue=64]\n"
         "       [--max-conns=64] [--read-timeout=10] [--write-timeout=10]\n"
         "       [--drain-deadline=5] [--state-file=SOI_SERVE_STATE.json]\n";
  return kExitUsage;
}

int Fail(int code, const Status& status) {
  std::cerr << "soid: " << status.ToString() << "\n";
  return code;
}

struct SoidOptions {
  std::string snapshot;
  std::string city;
  double scale = 0.05;
  serve::SoidServerOptions server;
};

Result<double> FlagDouble(const std::string& arg, size_t prefix) {
  return ParseDouble(arg.substr(prefix));
}

bool ParseArgs(const std::vector<std::string>& args, SoidOptions* out) {
  out->server.drain_state_path = "SOI_SERVE_STATE.json";
  for (const std::string& arg : args) {
    if (arg.rfind("--snapshot=", 0) == 0) {
      out->snapshot = arg.substr(11);
    } else if (arg.rfind("--city=", 0) == 0) {
      out->city = arg.substr(7);
    } else if (arg.rfind("--scale=", 0) == 0) {
      auto value = FlagDouble(arg, 8);
      if (!value.ok()) return false;
      out->scale = value.ValueOrDie();
    } else if (arg.rfind("--host=", 0) == 0) {
      out->server.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      out->server.port = std::stoi(arg.substr(7));
    } else if (arg.rfind("--workers=", 0) == 0) {
      out->server.num_workers = std::stoi(arg.substr(10));
    } else if (arg.rfind("--queue=", 0) == 0) {
      out->server.queue_capacity =
          static_cast<size_t>(std::stoi(arg.substr(8)));
    } else if (arg.rfind("--max-conns=", 0) == 0) {
      out->server.max_connections =
          static_cast<size_t>(std::stoi(arg.substr(12)));
    } else if (arg.rfind("--read-timeout=", 0) == 0) {
      auto value = FlagDouble(arg, 15);
      if (!value.ok()) return false;
      out->server.read_timeout_seconds = value.ValueOrDie();
    } else if (arg.rfind("--write-timeout=", 0) == 0) {
      auto value = FlagDouble(arg, 16);
      if (!value.ok()) return false;
      out->server.write_timeout_seconds = value.ValueOrDie();
    } else if (arg.rfind("--drain-deadline=", 0) == 0) {
      auto value = FlagDouble(arg, 17);
      if (!value.ok()) return false;
      out->server.drain_deadline_seconds = value.ValueOrDie();
    } else if (arg.rfind("--state-file=", 0) == 0) {
      out->server.drain_state_path = arg.substr(13);
    } else {
      return false;
    }
  }
  // Exactly one data source.
  return out->snapshot.empty() != out->city.empty();
}

/// The drain hook's target, latched once the server exists. SIGTERM
/// before then exits the process directly.
std::atomic<serve::SoidServer*> live_server{nullptr};

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  SoidOptions options;
  if (!ParseArgs(args, &options)) return Usage();

  // Signal hooks first, before any other thread exists (the engine's
  // pool included), so every later thread inherits the blocked mask and
  // delivery always lands in the sigwait watchers (common/signal_watch.h
  // contract). The server is constructed only after the data loads, so
  // the drain hook dereferences the latch at signal time.
  if (Status hook = WatchSignal(SIGTERM,
                                [] {
                                  serve::SoidServer* server =
                                      live_server.load();
                                  if (server != nullptr) {
                                    server->RequestDrain();
                                  } else {
                                    std::_Exit(kExitOk);
                                  }
                                });
      !hook.ok()) {
    return Fail(kExitRuntime, hook);
  }
  if (Status hook = obs::InstallSignalDump(options.server.drain_state_path);
      !hook.ok()) {
    return Fail(kExitRuntime, hook);
  }

  // Data plane: snapshot warm start (the production path) or a generated
  // city (the kick-the-tires path).
  std::unique_ptr<Dataset> dataset;
  std::unique_ptr<DatasetIndexes> indexes;
  std::vector<std::shared_ptr<const EpsAugmentedMaps>> preloaded;
  if (!options.snapshot.empty()) {
    std::cerr << "[soid] restoring snapshot " << options.snapshot << "\n";
    Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(options.snapshot);
    if (!loaded.ok()) {
      // Refuse to serve on a corrupt snapshot: a typed exit beats serving
      // partial or silently-wrong state.
      return Fail(kExitBadSnapshot, loaded.status());
    }
    LoadedSnapshot snapshot = std::move(loaded).ValueOrDie();
    dataset = std::move(snapshot.dataset);
    indexes = std::move(snapshot.indexes);
    preloaded = std::move(snapshot.eps_maps);
  } else {
    const CityProfile* profile = nullptr;
    std::vector<CityProfile> profiles = AllCityProfiles(options.scale);
    for (const CityProfile& candidate : profiles) {
      if (candidate.name == options.city) profile = &candidate;
    }
    if (profile == nullptr) {
      return Fail(kExitUsage,
                  Status::InvalidArgument("unknown city " + options.city));
    }
    std::cerr << "[soid] generating " << options.city
              << " (scale=" << options.scale << ")\n";
    Result<Dataset> generated = GenerateCity(*profile);
    if (!generated.ok()) return Fail(kExitRuntime, generated.status());
    dataset = std::make_unique<Dataset>(std::move(generated).ValueOrDie());
    indexes = BuildIndexes(*dataset, 0.0005);
  }

  QueryEngineOptions engine_options;
  engine_options.num_threads = options.server.num_workers;
  QueryEngine engine(dataset->network, indexes->poi_grid,
                     indexes->global_index, indexes->segment_cells,
                     engine_options, std::move(preloaded));

  serve::SoidServer server(&engine, options.server);
  live_server.store(&server);

  if (Status started = server.Start(); !started.ok()) {
    return Fail(kExitRuntime, started);
  }
  std::cerr << "[soid] serving on " << options.server.host << ":"
            << server.port() << " (" << options.server.num_workers
            << " workers, queue " << options.server.queue_capacity
            << "); SIGTERM drains\n";
  Status drained = server.Wait();
  live_server.store(nullptr);  // a late SIGTERM now exits directly
  serve::SoidServer::Stats stats = server.stats();
  std::cerr << "[soid] drained: accepted=" << stats.accepted
            << " requests=" << stats.requests << " ok=" << stats.responses_ok
            << " errors=" << stats.responses_error
            << " shed=" << stats.shed_queue_full
            << " cancelled=" << stats.drain_cancelled << "\n";
  if (!drained.ok()) return Fail(kExitRuntime, drained);
  return kExitOk;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Main(argc, argv); }
