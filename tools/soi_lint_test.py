#!/usr/bin/env python3
"""Self-test for tools/soi_lint.py against tests/lint_fixtures/.

Asserts, rule by rule, that each planted violation fires, that the
inline suppression marker and the file allowlist silence findings, that
the layering/include-cycle audit rejects the synthetic bad layer tree
while passing the real one, that --json emits machine-readable findings,
and that the header self-containment mode rejects the non-self-contained
fixture while accepting the good one. Registered in ctest as
`soi_lint_selftest` under the `lint` label.
"""

import contextlib
import io
import json
import os
import shutil
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import soi_lint  # noqa: E402

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")


def lint_fixture(name, rules=None):
    path = os.path.join(FIXTURES, name)
    return soi_lint.run_text_rules(ROOT, explicit_paths=[path], rules=rules)


class TextRuleTest(unittest.TestCase):
    # (fixture, rule, expected line of the single planted violation)
    CASES = [
        ("bad_determinism.cc", "determinism", 5),
        ("bad_float_eq.cc", "float-eq", 6),
        ("bad_io_stream.cc", "io-stream", 5),
        ("bad_io_stream_diag.cc", "io-stream", 6),
        ("bad_naked_new.cc", "naked-new", 5),
        ("bad_unchecked_io.cc", "unchecked-io", 8),
        ("bad_nested_vector.h", "nested-vector", 10),
        ("bad_lock_hygiene.cc", "lock-hygiene", 5),
    ]

    def test_each_rule_fires_once_on_its_fixture(self):
        for fixture, rule, line in self.CASES:
            with self.subTest(rule=rule):
                findings = lint_fixture(fixture)
                self.assertEqual(
                    [(f[2], f[1]) for f in findings],
                    [(rule, line)],
                    "expected exactly one %s finding on line %d of %s, "
                    "got %r" % (rule, line, fixture, findings),
                )

    def test_rule_subset_filter(self):
        # Restricting to an unrelated rule must not fire.
        self.assertEqual(
            lint_fixture("bad_determinism.cc", rules=["naked-new"]), []
        )

    def test_inline_suppression_silences_every_rule(self):
        self.assertEqual(lint_fixture("suppressed.cc"), [])

    def test_nested_vector_rule_is_header_only(self):
        # RULE_FILE_GLOB limits nested-vector to *.h: the same pattern in
        # a .cc build path is the blessed staging idiom and must not fire.
        self.assertEqual(lint_fixture("good_nested_vector.cc"), [])

    def test_allowlist_silences_a_fixture(self):
        rel = "tests/lint_fixtures/bad_determinism.cc"
        original = soi_lint.ALLOWLIST["determinism"]
        soi_lint.ALLOWLIST["determinism"] = original + [rel]
        try:
            self.assertEqual(lint_fixture("bad_determinism.cc"), [])
        finally:
            soi_lint.ALLOWLIST["determinism"] = original

    def test_comments_and_strings_are_inert(self):
        # bad_float_eq.cc contains `== 2.5` in a string and `== 3.5` in a
        # comment; only the real comparison (line 6) may fire — already
        # covered above, re-asserted here against accidental double
        # reports.
        findings = lint_fixture("bad_float_eq.cc")
        self.assertEqual(len(findings), 1)

    def test_repo_scan_is_clean(self):
        # The tree itself must lint clean, and the fixtures directory
        # must be excluded from that scan.
        self.assertEqual(soi_lint.run_text_rules(ROOT), [])


class LayeringRuleTest(unittest.TestCase):
    BAD_TREE = os.path.join(FIXTURES, "layer_tree_bad")

    def test_core_including_serve_is_rejected(self):
        findings = soi_lint.run_layering_rules(self.BAD_TREE)
        layering = [f for f in findings if f[2] == "layering"]
        self.assertEqual(len(layering), 1, findings)
        path, line, _, message = layering[0]
        self.assertEqual(path, "src/core/uses_serve.cc")
        self.assertEqual(line, 3)
        self.assertIn("'core'", message)
        self.assertIn("'serve'", message)

    def test_include_cycle_is_rejected(self):
        findings = soi_lint.run_layering_rules(self.BAD_TREE)
        cycles = [f for f in findings if f[2] == "include-cycle"]
        self.assertEqual(len(cycles), 1, findings)
        self.assertEqual(cycles[0][0], "src/grid/cycle_a.h")
        self.assertIn(
            "grid/cycle_a.h -> grid/cycle_b.h -> grid/cycle_a.h",
            cycles[0][3],
        )

    def test_real_tree_passes(self):
        # The acceptance gate: the audit must hold on the actual src/
        # include graph (the .cc instrumentation exception included).
        self.assertEqual(soi_lint.run_layering_rules(ROOT), [])

    def test_declared_dag_is_acyclic_and_closed(self):
        deps = soi_lint.LAYER_DEPS
        for layer, allowed in deps.items():
            for dep in allowed:
                self.assertIn(dep, deps, "undeclared layer " + dep)
                self.assertNotIn(
                    layer,
                    deps[dep],
                    "LAYER_DEPS cycle between %s and %s" % (layer, dep),
                )
                # Transitive closure: anything a dependency may include,
                # the dependent may too, so membership is one lookup.
                self.assertTrue(
                    deps[dep] <= allowed,
                    "LAYER_DEPS[%r] not transitively closed over %r"
                    % (layer, dep),
                )


class JsonOutputTest(unittest.TestCase):
    def run_main(self, argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = soi_lint.main(argv)
        return status, out.getvalue()

    def test_findings_are_machine_readable(self):
        fixture = os.path.join(FIXTURES, "bad_lock_hygiene.cc")
        status, out = self.run_main(["--root", ROOT, "--json", fixture])
        self.assertEqual(status, 1)
        findings = json.loads(out)
        self.assertEqual(len(findings), 1)
        self.assertEqual(
            sorted(findings[0]), ["file", "line", "message", "rule"]
        )
        self.assertEqual(findings[0]["rule"], "lock-hygiene")
        self.assertEqual(findings[0]["line"], 5)
        self.assertTrue(findings[0]["file"].endswith("bad_lock_hygiene.cc"))

    def test_clean_scan_is_an_empty_array(self):
        status, out = self.run_main(["--root", ROOT, "--json"])
        self.assertEqual(status, 0)
        self.assertEqual(json.loads(out), [])


class HeaderRuleTest(unittest.TestCase):
    def compiler(self):
        cxx = os.environ.get("SOI_LINT_CXX", "c++")
        return cxx if shutil.which(cxx) else None

    def test_bad_header_fails_good_header_passes(self):
        cxx = self.compiler()
        if cxx is None:
            self.skipTest("no C++ compiler available")
        bad = soi_lint.run_header_rule(
            ROOT,
            cxx,
            "c++20",
            headers=[os.path.join(FIXTURES, "bad_header.h")],
            include_dir=FIXTURES,
        )
        self.assertEqual(len(bad), 1)
        self.assertEqual(bad[0][2], "headers")
        good = soi_lint.run_header_rule(
            ROOT,
            cxx,
            "c++20",
            headers=[os.path.join(FIXTURES, "good_header.h")],
            include_dir=FIXTURES,
        )
        self.assertEqual(good, [])


if __name__ == "__main__":
    unittest.main()
