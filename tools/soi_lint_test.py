#!/usr/bin/env python3
"""Self-test for tools/soi_lint.py against tests/lint_fixtures/.

Asserts, rule by rule, that each planted violation fires, that the
inline suppression marker and the file allowlist silence findings, and
that the header self-containment mode rejects the non-self-contained
fixture while accepting the good one. Registered in ctest as
`soi_lint_selftest` under the `lint` label.
"""

import os
import shutil
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import soi_lint  # noqa: E402

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")


def lint_fixture(name, rules=None):
    path = os.path.join(FIXTURES, name)
    return soi_lint.run_text_rules(ROOT, explicit_paths=[path], rules=rules)


class TextRuleTest(unittest.TestCase):
    # (fixture, rule, expected line of the single planted violation)
    CASES = [
        ("bad_determinism.cc", "determinism", 5),
        ("bad_float_eq.cc", "float-eq", 6),
        ("bad_io_stream.cc", "io-stream", 5),
        ("bad_io_stream_diag.cc", "io-stream", 6),
        ("bad_naked_new.cc", "naked-new", 5),
        ("bad_unchecked_io.cc", "unchecked-io", 8),
        ("bad_nested_vector.h", "nested-vector", 10),
    ]

    def test_each_rule_fires_once_on_its_fixture(self):
        for fixture, rule, line in self.CASES:
            with self.subTest(rule=rule):
                findings = lint_fixture(fixture)
                self.assertEqual(
                    [(f[2], f[1]) for f in findings],
                    [(rule, line)],
                    "expected exactly one %s finding on line %d of %s, "
                    "got %r" % (rule, line, fixture, findings),
                )

    def test_rule_subset_filter(self):
        # Restricting to an unrelated rule must not fire.
        self.assertEqual(
            lint_fixture("bad_determinism.cc", rules=["naked-new"]), []
        )

    def test_inline_suppression_silences_every_rule(self):
        self.assertEqual(lint_fixture("suppressed.cc"), [])

    def test_nested_vector_rule_is_header_only(self):
        # RULE_FILE_GLOB limits nested-vector to *.h: the same pattern in
        # a .cc build path is the blessed staging idiom and must not fire.
        self.assertEqual(lint_fixture("good_nested_vector.cc"), [])

    def test_allowlist_silences_a_fixture(self):
        rel = "tests/lint_fixtures/bad_determinism.cc"
        original = soi_lint.ALLOWLIST["determinism"]
        soi_lint.ALLOWLIST["determinism"] = original + [rel]
        try:
            self.assertEqual(lint_fixture("bad_determinism.cc"), [])
        finally:
            soi_lint.ALLOWLIST["determinism"] = original

    def test_comments_and_strings_are_inert(self):
        # bad_float_eq.cc contains `== 2.5` in a string and `== 3.5` in a
        # comment; only the real comparison (line 6) may fire — already
        # covered above, re-asserted here against accidental double
        # reports.
        findings = lint_fixture("bad_float_eq.cc")
        self.assertEqual(len(findings), 1)

    def test_repo_scan_is_clean(self):
        # The tree itself must lint clean, and the fixtures directory
        # must be excluded from that scan.
        self.assertEqual(soi_lint.run_text_rules(ROOT), [])


class HeaderRuleTest(unittest.TestCase):
    def compiler(self):
        cxx = os.environ.get("SOI_LINT_CXX", "c++")
        return cxx if shutil.which(cxx) else None

    def test_bad_header_fails_good_header_passes(self):
        cxx = self.compiler()
        if cxx is None:
            self.skipTest("no C++ compiler available")
        bad = soi_lint.run_header_rule(
            ROOT,
            cxx,
            "c++20",
            headers=[os.path.join(FIXTURES, "bad_header.h")],
            include_dir=FIXTURES,
        )
        self.assertEqual(len(bad), 1)
        self.assertEqual(bad[0][2], "headers")
        good = soi_lint.run_header_rule(
            ROOT,
            cxx,
            "c++20",
            headers=[os.path.join(FIXTURES, "good_header.h")],
            include_dir=FIXTURES,
        )
        self.assertEqual(good, [])


if __name__ == "__main__":
    unittest.main()
