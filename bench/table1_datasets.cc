// Reproduces Table 1 of the paper: dataset statistics (number of segments,
// min/max segment length, number of POIs) for the three generated cities.
//
// The paper reports lengths in meters; the synthetic cities use degree-like
// units, so lengths are also converted with 1 degree ~ 111,000 m to make
// the magnitudes comparable.

#include <iostream>

#include "bench_util.h"
#include "eval/table_printer.h"
#include "network/network_stats.h"

namespace soi {
namespace {

constexpr double kMetersPerDegree = 111000.0;

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);

  std::cout << "\nTable 1: Datasets used in the evaluation (scale="
            << options.scale << " of the paper's sizes)\n\n";
  TablePrinter table({"Dataset", "Num of segm.", "Min segm. length (m)",
                      "Max segm. length (m)", "Num of POIs",
                      "Num of streets", "Num of photos"});
  for (const auto& city : cities) {
    NetworkStats stats = ComputeNetworkStats(city->dataset.network);
    table.AddRow({city->profile.name, std::to_string(stats.num_segments),
                  FormatDouble(stats.min_segment_length * kMetersPerDegree, 2),
                  FormatDouble(stats.max_segment_length * kMetersPerDegree, 2),
                  std::to_string(city->dataset.pois.size()),
                  std::to_string(stats.num_streets),
                  std::to_string(city->dataset.photos.size())});
  }
  table.Print(&std::cout);
  std::cout << "\nPaper (scale=1.0): London 113885 segm. / 0.93-5834.71 m / "
               "2114264 POIs;\n                   Berlin 47755 / 0.06-6312.96"
               " / 797244; Vienna 22211 / 1.35-9913.42 / 408712\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
