// Reproduces Figure 4 of the paper: execution time of the SOI algorithm
// vs the BL baseline on each city, (a-c) varying k with |Psi|=3, and
// (d-f) varying |Psi| with k=50. SOI's time is broken down into list
// construction / filtering / refinement, as in the paper's stacked bars.
//
// Expected shape (paper): SOI outperforms BL by ~2.1-3.2x on London,
// 1.6-2.1x on Berlin, 1.1-2.5x on Vienna when varying k, and by 1.1x up
// to 18x when varying |Psi| (more selective keyword sets prune more).

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/soi_algorithm.h"
#include "core/soi_baseline.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

struct Measurement {
  SoiQueryStats soi_stats;
  double soi_seconds = 0.0;
  double bl_seconds = 0.0;
};

Measurement Measure(const bench_util::CityContext& city,
                    const SoiQuery& query, const EpsAugmentedMaps& maps) {
  SoiAlgorithm algorithm(city.dataset.network, city.indexes->poi_grid,
                         city.indexes->global_index);
  SoiBaseline baseline(city.dataset.network, city.indexes->poi_grid);

  Measurement m;
  // Warm-up + best-of-3 to de-noise (queries are deterministic).
  for (int run = 0; run < 3; ++run) {
    Stopwatch timer;
    SoiResult result = algorithm.TopK(query, maps);
    double elapsed = timer.ElapsedSeconds();
    if (run == 0 || elapsed < m.soi_seconds) {
      m.soi_seconds = elapsed;
      m.soi_stats = result.stats;
    }
  }
  for (int run = 0; run < 3; ++run) {
    Stopwatch timer;
    SoiResult result = baseline.TopK(query, maps);
    double elapsed = timer.ElapsedSeconds();
    if (run == 0 || elapsed < m.bl_seconds) m.bl_seconds = elapsed;
  }
  return m;
}

void AddRow(TablePrinter* table, const std::string& label,
            const Measurement& m) {
  double speedup = m.soi_seconds > 0 ? m.bl_seconds / m.soi_seconds : 0.0;
  table->AddRow({label, FormatMillis(m.soi_seconds),
                 FormatMillis(m.soi_stats.list_construction_seconds),
                 FormatMillis(m.soi_stats.filtering_seconds),
                 FormatMillis(m.soi_stats.refinement_seconds),
                 FormatMillis(m.bl_seconds),
                 FormatDouble(speedup, 2) + "x",
                 std::to_string(m.soi_stats.segments_seen)});
}

// One sweep point in the machine-readable output, with the SOI per-phase
// breakdown alongside the totals (mirrors the stacked bars).
void WritePointJson(JsonWriter* json, const std::string& axis,
                    const std::string& value, const Measurement& m) {
  json->BeginObject();
  json->KeyValue(axis, value);
  json->KeyValue("soi_seconds", m.soi_seconds);
  json->KeyValue("lists_seconds", m.soi_stats.list_construction_seconds);
  json->KeyValue("filter_seconds", m.soi_stats.filtering_seconds);
  json->KeyValue("refine_seconds", m.soi_stats.refinement_seconds);
  json->KeyValue("bl_seconds", m.bl_seconds);
  json->KeyValue("speedup",
                 m.soi_seconds > 0 ? m.bl_seconds / m.soi_seconds : 0.0);
  json->KeyValue("segments_seen", m.soi_stats.segments_seen);
  json->EndObject();
}

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);
  double eps = 0.0005;

  bench_util::BenchJsonFile out("fig4_soi_performance", options,
                                "BENCH_fig4_soi_performance.json");
  JsonWriter* json = out.json();
  json->KeyValue("eps", eps);
  json->Key("cities");
  json->BeginArray();
  for (const auto& city : cities) {
    EpsAugmentedMaps maps(city->indexes->segment_cells, eps);
    json->BeginObject();
    json->KeyValue("city", city->profile.name);

    // --- Figure 4 (a-c): varying k, |Psi| = 3 ---------------------------
    std::cout << "\nFigure 4 (" << city->profile.name
              << "): varying k, |Psi|=3, eps=0.0005\n\n";
    TablePrinter by_k({"k", "SOI total", "  lists", "  filter", "  refine",
                       "BL total", "speedup", "segm.seen"});
    json->Key("varying_k");
    json->BeginArray();
    for (int32_t k : {10, 20, 50, 100, 200}) {
      SoiQuery query;
      query.keywords =
          bench_util::AccumulatedQueryKeywords(city->dataset, 3);
      query.k = k;
      query.eps = eps;
      Measurement m = Measure(*city, query, maps);
      AddRow(&by_k, std::to_string(k), m);
      WritePointJson(json, "k", std::to_string(k), m);
    }
    json->EndArray();
    by_k.Print(&std::cout);

    // --- Figure 4 (d-f): varying |Psi|, k = 50 --------------------------
    std::cout << "\nFigure 4 (" << city->profile.name
              << "): varying |Psi|, k=50, eps=0.0005\n\n";
    TablePrinter by_psi({"|Psi|", "SOI total", "  lists", "  filter",
                         "  refine", "BL total", "speedup", "segm.seen"});
    json->Key("varying_psi");
    json->BeginArray();
    for (int count = 1; count <= 4; ++count) {
      SoiQuery query;
      query.keywords =
          bench_util::AccumulatedQueryKeywords(city->dataset, count);
      query.k = 50;
      query.eps = eps;
      Measurement m = Measure(*city, query, maps);
      AddRow(&by_psi, std::to_string(count), m);
      WritePointJson(json, "psi", std::to_string(count), m);
    }
    json->EndArray();
    json->EndObject();
    by_psi.Print(&std::cout);
  }
  json->EndArray();
  out.Close();
  std::cout << "\nWrote BENCH_fig4_soi_performance.json.\n"
               "Paper shape: SOI beats BL by 1.1-3.2x across k and by up "
               "to 18x for selective\nkeyword sets; SOI cost grows with "
               "|Psi| while BL is insensitive to it.\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
