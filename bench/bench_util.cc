#include "bench_util.h"

#include <algorithm>
#include <ctime>
#include <thread>

#include "common/stopwatch.h"
#include "obs/json_export.h"
#include "obs/metrics.h"

// Build provenance, injected by bench/CMakeLists.txt at configure time.
// Fallbacks keep non-CMake compiles (e.g. IDE single-TU checks) building.
#ifndef SOI_BUILD_GIT_DESCRIBE
#define SOI_BUILD_GIT_DESCRIBE "unknown"
#endif
#ifndef SOI_BUILD_COMPILER
#define SOI_BUILD_COMPILER "unknown"
#endif
#ifndef SOI_BUILD_CXX_FLAGS
#define SOI_BUILD_CXX_FLAGS ""
#endif
#ifndef SOI_BUILD_TYPE
#define SOI_BUILD_TYPE "unknown"
#endif

namespace soi {
namespace bench_util {
namespace {

// UTC wall-clock of the run start, ISO 8601 ("2026-08-08T12:34:56Z").
std::string UtcTimestamp() {
  // soi-lint: determinism (wall-clock provenance stamp, not a seed)
  std::time_t now = std::time(nullptr);
  std::tm utc = {};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buffer[32];
  if (std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc) == 0) {
    return "unknown";
  }
  return buffer;
}

}  // namespace

std::vector<std::unique_ptr<CityContext>> LoadCities(
    const BenchOptions& options, double cell_size) {
  std::vector<std::unique_ptr<CityContext>> cities;
  for (const CityProfile& profile : AllCityProfiles(options.scale)) {
    bool wanted = false;
    for (const std::string& name : options.cities) {
      if (name == profile.name) wanted = true;
    }
    if (!wanted) continue;
    auto context = std::make_unique<CityContext>();
    context->profile = profile;
    std::cerr << "[bench] generating " << profile.name << " (scale="
              << options.scale << ", target_segments="
              << profile.target_segments << ", target_pois="
              << profile.target_pois << ")...\n";
    auto dataset = GenerateCity(profile);
    SOI_CHECK(dataset.ok()) << dataset.status().ToString();
    context->dataset = std::move(dataset).ValueOrDie();
    Stopwatch timer;
    context->indexes = BuildIndexes(context->dataset, cell_size);
    context->index_build_seconds = timer.ElapsedSeconds();
    cities.push_back(std::move(context));
  }
  SOI_CHECK(!cities.empty()) << "no city matched --cities";
  return cities;
}

KeywordSet AccumulatedQueryKeywords(const Dataset& dataset, int count) {
  static const char* kTable4Keywords[] = {"religion", "education", "food",
                                          "services"};
  SOI_CHECK(count >= 1 && count <= 4);
  std::vector<KeywordId> ids;
  for (int i = 0; i < count; ++i) {
    KeywordId id = dataset.vocabulary.Find(kTable4Keywords[i]);
    SOI_CHECK(id != kInvalidKeyword)
        << "dataset lacks keyword " << kTable4Keywords[i];
    ids.push_back(id);
  }
  return KeywordSet(std::move(ids));
}

BenchJsonFile::BenchJsonFile(const std::string& benchmark,
                             const BenchOptions& options,
                             const std::string& path)
    : path_(path), file_(path), json_(&file_) {
  SOI_CHECK(file_.good()) << "cannot write " << path;
  json_.BeginObject();
  json_.KeyValue("benchmark", benchmark);
  json_.KeyValue("scale", options.scale);
  json_.Key("cities_requested");
  json_.BeginArray();
  for (const std::string& city : options.cities) json_.String(city);
  json_.EndArray();
  // Provenance block: which build, on what hardware, when. Without it a
  // BENCH_*.json number cannot be compared across PRs.
  json_.Key("build_info");
  json_.BeginObject();
  json_.KeyValue("git_describe", SOI_BUILD_GIT_DESCRIBE);
  json_.KeyValue("compiler", SOI_BUILD_COMPILER);
  json_.KeyValue("cxx_flags", SOI_BUILD_CXX_FLAGS);
  json_.KeyValue("build_type", SOI_BUILD_TYPE);
  json_.KeyValue(
      "hardware_threads",
      static_cast<int64_t>(std::max(1u, std::thread::hardware_concurrency())));
  json_.KeyValue("timestamp_utc", UtcTimestamp());
  json_.EndObject();
}

BenchJsonFile::~BenchJsonFile() {
  SOI_CHECK(closed_) << "BenchJsonFile " << path_
                     << " destroyed without Close()";
}

void BenchJsonFile::Close() {
  SOI_CHECK(!closed_) << "BenchJsonFile " << path_ << " closed twice";
  closed_ = true;
  json_.Key("metrics");
  obs::WriteMetricsJson(obs::Registry::Global().Snapshot(), &json_);
  json_.EndObject();
  file_ << "\n";
  file_.flush();
  SOI_CHECK(json_.done() && file_.good()) << "failed writing " << path_;
}

}  // namespace bench_util
}  // namespace soi
