#include "bench_util.h"

#include "common/stopwatch.h"
#include "obs/json_export.h"
#include "obs/metrics.h"

namespace soi {
namespace bench_util {

std::vector<std::unique_ptr<CityContext>> LoadCities(
    const BenchOptions& options, double cell_size) {
  std::vector<std::unique_ptr<CityContext>> cities;
  for (const CityProfile& profile : AllCityProfiles(options.scale)) {
    bool wanted = false;
    for (const std::string& name : options.cities) {
      if (name == profile.name) wanted = true;
    }
    if (!wanted) continue;
    auto context = std::make_unique<CityContext>();
    context->profile = profile;
    std::cerr << "[bench] generating " << profile.name << " (scale="
              << options.scale << ", target_segments="
              << profile.target_segments << ", target_pois="
              << profile.target_pois << ")...\n";
    auto dataset = GenerateCity(profile);
    SOI_CHECK(dataset.ok()) << dataset.status().ToString();
    context->dataset = std::move(dataset).ValueOrDie();
    Stopwatch timer;
    context->indexes = BuildIndexes(context->dataset, cell_size);
    context->index_build_seconds = timer.ElapsedSeconds();
    cities.push_back(std::move(context));
  }
  SOI_CHECK(!cities.empty()) << "no city matched --cities";
  return cities;
}

KeywordSet AccumulatedQueryKeywords(const Dataset& dataset, int count) {
  static const char* kTable4Keywords[] = {"religion", "education", "food",
                                          "services"};
  SOI_CHECK(count >= 1 && count <= 4);
  std::vector<KeywordId> ids;
  for (int i = 0; i < count; ++i) {
    KeywordId id = dataset.vocabulary.Find(kTable4Keywords[i]);
    SOI_CHECK(id != kInvalidKeyword)
        << "dataset lacks keyword " << kTable4Keywords[i];
    ids.push_back(id);
  }
  return KeywordSet(std::move(ids));
}

BenchJsonFile::BenchJsonFile(const std::string& benchmark,
                             const BenchOptions& options,
                             const std::string& path)
    : path_(path), file_(path), json_(&file_) {
  SOI_CHECK(file_.good()) << "cannot write " << path;
  json_.BeginObject();
  json_.KeyValue("benchmark", benchmark);
  json_.KeyValue("scale", options.scale);
  json_.Key("cities_requested");
  json_.BeginArray();
  for (const std::string& city : options.cities) json_.String(city);
  json_.EndArray();
}

BenchJsonFile::~BenchJsonFile() {
  SOI_CHECK(closed_) << "BenchJsonFile " << path_
                     << " destroyed without Close()";
}

void BenchJsonFile::Close() {
  SOI_CHECK(!closed_) << "BenchJsonFile " << path_ << " closed twice";
  closed_ = true;
  json_.Key("metrics");
  obs::WriteMetricsJson(obs::Registry::Global().Snapshot(), &json_);
  json_.EndObject();
  file_ << "\n";
  file_.flush();
  SOI_CHECK(json_.done() && file_.good()) << "failed writing " << path_;
}

}  // namespace bench_util
}  // namespace soi
