// Extension study: visual features in the diversification criteria (the
// paper's future work). For the top SOI of each city, sweeps the visual
// weight v and reports (a) the visual redundancy of the selected summary
// (mean pairwise descriptor distance — higher is better), (b) the paper's
// spatio-textual objective (to show how little it is sacrificed), and
// (c) ST_Rel+Div vs BL runtime with the visual component enabled.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

double MeanVisualDiversity(const PhotoScorer& scorer,
                           const std::vector<PhotoId>& set) {
  if (set.size() < 2) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      sum += scorer.VisualDiv(set[i], set[j]);
    }
  }
  return sum * 2.0 / (static_cast<double>(set.size()) * (set.size() - 1));
}

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);
  double eps = 0.0005;

  for (const auto& city : cities) {
    const Dataset& dataset = city->dataset;
    SoiQuery query;
    query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
    query.k = 1;
    query.eps = eps;
    EpsAugmentedMaps maps(city->indexes->segment_cells, eps);
    SoiAlgorithm algorithm(dataset.network, city->indexes->poi_grid,
                           city->indexes->global_index);
    StreetId top = algorithm.TopK(query, maps).streets[0].street;
    StreetPhotos sp = ExtractStreetPhotos(dataset.network, top,
                                          dataset.photos,
                                          city->indexes->photo_grid, eps);
    SOI_CHECK(sp.size() > 20);

    DiversifyParams base;
    base.k = 10;
    base.lambda = 0.5;
    base.w = 0.5;
    base.rho = 0.0001;
    PhotoScorer scorer(sp, base.rho);
    SOI_CHECK(scorer.has_visual());
    PhotoGridIndex index(base.rho / 2, sp.photos);
    CellBoundsCalculator bounds(sp, index);

    std::cout << "\n=== " << city->profile.name << " (|R_s|=" << sp.size()
              << ", k=10) ===\n\n";
    TablePrinter table({"visual weight v", "visual div of summary",
                        "spatio-textual F (v=0 metric)", "ST_Rel+Div",
                        "BL", "speedup"});
    for (double v : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      DiversifyParams params = base;
      params.visual_weight = v;
      DiversifyResult fast;
      DiversifyResult slow;
      double fast_seconds = 0.0;
      double slow_seconds = 0.0;
      for (int run = 0; run < 3; ++run) {
        Stopwatch timer;
        fast = StRelDivSelect(scorer, bounds, params);
        double t = timer.ElapsedSeconds();
        if (run == 0 || t < fast_seconds) fast_seconds = t;
      }
      for (int run = 0; run < 3; ++run) {
        Stopwatch timer;
        slow = GreedyBaselineSelect(scorer, params);
        double t = timer.ElapsedSeconds();
        if (run == 0 || t < slow_seconds) slow_seconds = t;
      }
      SOI_CHECK(fast.selected == slow.selected);
      DiversifyParams paper = base;  // visual_weight = 0: Eq. 2 as-is.
      table.AddRow({FormatDouble(v, 1),
                    FormatDouble(MeanVisualDiversity(scorer, fast.selected),
                                 3),
                    FormatDouble(scorer.Objective(fast.selected, paper), 4),
                    FormatMillis(fast_seconds), FormatMillis(slow_seconds),
                    FormatDouble(slow_seconds / fast_seconds, 1) + "x"});
    }
    table.Print(&std::cout);
  }
  std::cout << "\nExpected shape: visual diversity of the summary grows "
               "with v while the paper's\nspatio-textual objective "
               "degrades only mildly; ST_Rel+Div stays well ahead of BL."
               "\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
