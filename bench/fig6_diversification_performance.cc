// Reproduces Figure 6 of the paper: execution time of ST_Rel+Div vs the
// BL greedy baseline for describing one SOI per city, (a-c) varying k,
// (d-f) varying lambda, and (g-i) varying w.
//
// Expected shape (paper): ST_Rel+Div wins by 2x up to 64x, stays
// sub-second while BL takes (multiple) seconds on the photo-rich street
// (London had |R_s| = 6572; Berlin 788; Vienna 1584); both grow with k.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

struct Setup {
  StreetPhotos sp;
  std::string street_name;
};

Setup PrepareStreet(const bench_util::CityContext& city, double eps) {
  const Dataset& dataset = city.dataset;
  SoiQuery query;
  query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
  query.k = 1;
  query.eps = eps;
  EpsAugmentedMaps maps(city.indexes->segment_cells, eps);
  SoiAlgorithm algorithm(dataset.network, city.indexes->poi_grid,
                         city.indexes->global_index);
  StreetId top = algorithm.TopK(query, maps).streets[0].street;
  Setup setup{ExtractStreetPhotos(dataset.network, top, dataset.photos,
                                  city.indexes->photo_grid, eps),
              dataset.network.street(top).name};
  SOI_CHECK(setup.sp.size() > 20);
  return setup;
}

void MeasureRow(TablePrinter* table, JsonWriter* json,
                const std::string& axis, const std::string& label,
                const PhotoScorer& scorer,
                const CellBoundsCalculator& bounds,
                const DiversifyParams& params) {
  double fast_seconds = 0.0;
  double slow_seconds = 0.0;
  DiversifyResult fast;
  DiversifyResult slow;
  for (int run = 0; run < 3; ++run) {
    Stopwatch timer;
    fast = StRelDivSelect(scorer, bounds, params);
    double t = timer.ElapsedSeconds();
    if (run == 0 || t < fast_seconds) fast_seconds = t;
  }
  for (int run = 0; run < 3; ++run) {
    Stopwatch timer;
    slow = GreedyBaselineSelect(scorer, params);
    double t = timer.ElapsedSeconds();
    if (run == 0 || t < slow_seconds) slow_seconds = t;
  }
  SOI_CHECK(fast.selected == slow.selected)
      << "ST_Rel+Div diverged from the baseline";
  double speedup = fast_seconds > 0 ? slow_seconds / fast_seconds : 0.0;
  table->AddRow({label, FormatMillis(fast_seconds),
                 FormatMillis(slow_seconds),
                 FormatDouble(speedup, 1) + "x",
                 std::to_string(fast.stats.mmr_evaluations),
                 std::to_string(slow.stats.mmr_evaluations)});
  json->BeginObject();
  json->KeyValue(axis, label);
  json->KeyValue("st_rel_div_seconds", fast_seconds);
  json->KeyValue("bl_seconds", slow_seconds);
  json->KeyValue("speedup", speedup);
  json->KeyValue("st_mmr_evaluations", fast.stats.mmr_evaluations);
  json->KeyValue("bl_mmr_evaluations", slow.stats.mmr_evaluations);
  json->KeyValue("st_cells_refined", fast.stats.cells_refined);
  json->KeyValue("st_cells_pruned", fast.stats.cells_pruned);
  json->EndObject();
}

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);
  double eps = 0.0005;

  bench_util::BenchJsonFile out("fig6_diversification_performance", options,
                                "BENCH_fig6_diversification_performance.json");
  JsonWriter* json = out.json();
  json->KeyValue("eps", eps);
  json->Key("cities");
  json->BeginArray();
  for (const auto& city : cities) {
    Setup setup = PrepareStreet(*city, eps);
    DiversifyParams base;
    base.k = 20;
    base.lambda = 0.5;
    base.w = 0.5;
    base.rho = 0.0001;
    PhotoScorer scorer(setup.sp, base.rho);
    PhotoGridIndex index(base.rho / 2, setup.sp.photos);
    CellBoundsCalculator bounds(setup.sp, index);

    std::cout << "\n=== " << city->profile.name << " (street \""
              << setup.street_name << "\", |R_s|=" << setup.sp.size()
              << ") ===\n";
    json->BeginObject();
    json->KeyValue("city", city->profile.name);
    json->KeyValue("street", setup.street_name);
    json->KeyValue("num_photos", static_cast<int64_t>(setup.sp.size()));

    std::cout << "\nFigure 6 (varying k; lambda=0.5, w=0.5):\n\n";
    TablePrinter by_k({"k", "ST_Rel+Div", "BL", "speedup", "mmr evals ST",
                       "mmr evals BL"});
    json->Key("varying_k");
    json->BeginArray();
    for (int32_t k : {10, 20, 30, 40, 50}) {
      DiversifyParams params = base;
      params.k = k;
      MeasureRow(&by_k, json, "k", std::to_string(k), scorer, bounds,
                 params);
    }
    json->EndArray();
    by_k.Print(&std::cout);

    std::cout << "\nFigure 6 (varying lambda; k=20, w=0.5):\n\n";
    TablePrinter by_lambda({"lambda", "ST_Rel+Div", "BL", "speedup",
                            "mmr evals ST", "mmr evals BL"});
    json->Key("varying_lambda");
    json->BeginArray();
    for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      DiversifyParams params = base;
      params.lambda = lambda;
      MeasureRow(&by_lambda, json, "lambda", FormatDouble(lambda, 2),
                 scorer, bounds, params);
    }
    json->EndArray();
    by_lambda.Print(&std::cout);

    std::cout << "\nFigure 6 (varying w; k=20, lambda=0.5):\n\n";
    TablePrinter by_w({"w", "ST_Rel+Div", "BL", "speedup", "mmr evals ST",
                       "mmr evals BL"});
    json->Key("varying_w");
    json->BeginArray();
    for (double w : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      DiversifyParams params = base;
      params.w = w;
      MeasureRow(&by_w, json, "w", FormatDouble(w, 2), scorer, bounds,
                 params);
    }
    json->EndArray();
    json->EndObject();
    by_w.Print(&std::cout);
  }
  json->EndArray();
  out.Close();
  std::cout << "\nWrote BENCH_fig6_diversification_performance.json.\n"
               "Paper shape: ST_Rel+Div 2-64x faster than BL, sub-second "
               "everywhere; both grow\nwith k; differences persist across "
               "lambda and w.\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
