// Open-loop load generator for the soid serving front-end: a fixed
// arrival schedule (--rate requests/sec for --seconds, round-robin over
// --connections persistent client connections) is driven against an
// in-process SoidServer, per city. Latency is measured against each
// request's SCHEDULED send time, not its actual one — the open-loop
// discipline that keeps queueing delay visible instead of silently
// absorbing it into a slower request stream (coordinated omission).
//
// Reports, into BENCH_soi_serving.json (standard envelope with the
// build_info provenance block):
//  - client-observed p50/p99/p999/max wall-clock per request, exact
//    nearest-rank percentiles over every completed request;
//  - server-side engine percentiles over the same window, derived from
//    the flight recorder like BENCH_soi_throughput.json (empty when
//    observability is compiled out);
//  - the overload ledger: responses by status code, queue sheds, slow
//    evictions, and the drain outcome.
//
// The bench is also a GATE: every response must be OK or carry a typed
// Status from the documented taxonomy (SOI_CHECK aborts otherwise), and
// the final drain must complete cleanly.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/query_engine.h"
#include "eval/table_printer.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "serve/client.h"
#include "serve/server.h"

namespace soi {
namespace {

struct LoadOptions {
  double rate = 200.0;        // scheduled arrivals per second
  double seconds = 4.0;       // schedule length
  int connections = 8;        // persistent client connections
  bool smoke = false;
};

struct Outcome {
  std::vector<double> latencies;  // completed requests, any response
  int64_t ok = 0;
  int64_t resource_exhausted = 0;
  int64_t other_typed = 0;
  int64_t untyped = 0;
};

// Exact percentile of a sorted sample set (nearest-rank method).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

bool IsTyped(StatusCode code) {
  switch (code) {
    case StatusCode::kIOError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

// The serving workload: the throughput bench's mixed (eps, k, |Psi|)
// recipe, shuffled once so the arrival order interleaves eps values.
std::vector<SoiQuery> MakeWorkload(const Dataset& dataset) {
  constexpr double kEpsValues[] = {0.0004, 0.0005, 0.0007};
  constexpr int32_t kKValues[] = {10, 50};
  std::vector<SoiQuery> pool;
  for (double eps : kEpsValues) {
    for (int32_t k : kKValues) {
      for (int psi = 1; psi <= 4; ++psi) {
        SoiQuery query;
        query.keywords = bench_util::AccumulatedQueryKeywords(dataset, psi);
        query.k = k;
        query.eps = eps;
        pool.push_back(query);
      }
    }
  }
  Rng rng(20260808);
  rng.Shuffle(&pool);
  return pool;
}

/// Drives `total` requests at `rate`/sec split round-robin across
/// `connections` clients; request k is scheduled at start + k/rate and
/// its latency runs from that instant to its response.
Outcome RunOpenLoop(int port, const std::vector<SoiQuery>& pool,
                    const LoadOptions& load, int64_t total) {
  using Clock = std::chrono::steady_clock;
  std::vector<Outcome> per_thread(
      static_cast<size_t>(load.connections));
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(50);
  std::vector<std::thread> threads;
  threads.reserve(per_thread.size());
  for (int t = 0; t < load.connections; ++t) {
    threads.emplace_back([&, t] {
      serve::SoidClientOptions client_options;
      client_options.port = port;
      client_options.max_attempts = 1;   // open loop: no retries
      client_options.io_timeout_seconds = 60.0;  // overload is data, not
                                                 // a transport failure
      serve::SoidClient client(client_options);
      Outcome& mine = per_thread[static_cast<size_t>(t)];
      for (int64_t k = t; k < total; k += load.connections) {
        const Clock::time_point scheduled =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(k) / load.rate));
        std::this_thread::sleep_until(scheduled);
        Result<serve::QueryResponse> response =
            client.Query(pool[static_cast<size_t>(k) % pool.size()]);
        const double latency =
            std::chrono::duration<double>(Clock::now() - scheduled)
                .count();
        mine.latencies.push_back(latency);
        if (response.ok()) {
          ++mine.ok;
        } else {
          StatusCode code = response.status().code();
          SOI_CHECK(IsTyped(code))
              << "untyped serving failure: " << response.status().ToString();
          if (code == StatusCode::kResourceExhausted) {
            ++mine.resource_exhausted;
          } else {
            ++mine.other_typed;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Outcome merged;
  for (Outcome& part : per_thread) {
    merged.latencies.insert(merged.latencies.end(), part.latencies.begin(),
                            part.latencies.end());
    merged.ok += part.ok;
    merged.resource_exhausted += part.resource_exhausted;
    merged.other_typed += part.other_typed;
    merged.untyped += part.untyped;
  }
  std::sort(merged.latencies.begin(), merged.latencies.end());
  return merged;
}

struct CityServingRun {
  std::string city;
  int64_t requests = 0;
  Outcome outcome;
  std::vector<double> engine_latencies;  // flight recorder, sorted
  serve::SoidServer::Stats server_stats;
  Status drain_status = Status::OK();
};

CityServingRun ServeCity(const bench_util::CityContext& city,
                         const LoadOptions& load) {
  CityServingRun out;
  out.city = city.profile.name;

  QueryEngineOptions engine_options;
  engine_options.num_threads = 4;
  QueryEngine engine(city.dataset.network, city.indexes->poi_grid,
                     city.indexes->global_index, city.indexes->segment_cells,
                     engine_options);
  serve::SoidServerOptions server_options;
  server_options.num_workers = 4;
  server_options.queue_capacity = 128;
  server_options.drain_deadline_seconds = 30.0;
  serve::SoidServer server(&engine, server_options);
  Status started = server.Start();
  SOI_CHECK(started.ok()) << started.ToString();

  uint64_t flight_watermark = 0;
  if (obs::kEnabled) {
    obs::FlightRecorder::Snapshot before =
        obs::FlightRecorder::Global().Snap();
    if (!before.recent.empty()) {
      flight_watermark = before.recent.back().query_id;
    }
  }

  std::vector<SoiQuery> pool = MakeWorkload(city.dataset);
  out.requests = static_cast<int64_t>(load.rate * load.seconds);
  out.outcome = RunOpenLoop(server.port(), pool, load, out.requests);

  if (obs::kEnabled) {
    obs::FlightRecorder::Snapshot flights =
        obs::FlightRecorder::Global().Snap();
    for (const obs::QueryRecord& record : flights.recent) {
      if (record.query_id > flight_watermark && !record.coalesced) {
        out.engine_latencies.push_back(record.total_seconds);
      }
    }
    std::sort(out.engine_latencies.begin(), out.engine_latencies.end());
  }

  server.RequestDrain();
  out.drain_status = server.Wait();
  SOI_CHECK(out.drain_status.ok()) << out.drain_status.ToString();
  out.server_stats = server.stats();
  return out;
}

void WriteCityJson(JsonWriter* json, const CityServingRun& run,
                   const LoadOptions& load) {
  json->BeginObject();
  json->KeyValue("city", run.city);
  json->KeyValue("rate_per_second", load.rate);
  json->KeyValue("duration_seconds", load.seconds);
  json->KeyValue("connections", int64_t{load.connections});
  json->KeyValue("requests_scheduled", run.requests);
  json->KeyValue("responses_ok", run.outcome.ok);
  json->KeyValue("shed_resource_exhausted", run.outcome.resource_exhausted);
  json->KeyValue("other_typed_errors", run.outcome.other_typed);

  // Client-observed latency from the scheduled send instant (includes
  // server queueing and any schedule slip — the open-loop contract).
  json->Key("client_latency_seconds");
  json->BeginObject();
  json->KeyValue("samples",
                 static_cast<int64_t>(run.outcome.latencies.size()));
  json->KeyValue("p50_seconds", Percentile(run.outcome.latencies, 0.50));
  json->KeyValue("p99_seconds", Percentile(run.outcome.latencies, 0.99));
  json->KeyValue("p999_seconds", Percentile(run.outcome.latencies, 0.999));
  json->KeyValue("max_seconds", run.outcome.latencies.empty()
                                    ? 0.0
                                    : run.outcome.latencies.back());
  json->EndObject();

  // Server-side engine time per admitted query, from the flight
  // recorder (the same source BENCH_soi_throughput.json uses). The
  // recent ring is bounded, so under long runs this is the latest
  // window, not every request.
  json->Key("engine_latency_seconds");
  json->BeginObject();
  json->KeyValue("samples",
                 static_cast<int64_t>(run.engine_latencies.size()));
  json->KeyValue("p50_seconds", Percentile(run.engine_latencies, 0.50));
  json->KeyValue("p99_seconds", Percentile(run.engine_latencies, 0.99));
  json->KeyValue("p999_seconds", Percentile(run.engine_latencies, 0.999));
  json->EndObject();

  const serve::SoidServer::Stats& stats = run.server_stats;
  json->Key("server_stats");
  json->BeginObject();
  json->KeyValue("accepted", stats.accepted);
  json->KeyValue("requests", stats.requests);
  json->KeyValue("responses_ok", stats.responses_ok);
  json->KeyValue("responses_error", stats.responses_error);
  json->KeyValue("shed_queue_full", stats.shed_queue_full);
  json->KeyValue("expired_at_admission", stats.expired_at_admission);
  json->KeyValue("evicted_slow", stats.evicted_slow);
  json->KeyValue("bad_frames", stats.bad_frames);
  json->KeyValue("drain_cancelled", stats.drain_cancelled);
  json->EndObject();
  json->KeyValue("drain_clean", run.drain_status.ok());
  json->EndObject();
}

int Main(int argc, char** argv) {
  LoadOptions load;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--rate=", 0) == 0) {
      load.rate = ParseDouble(arg.substr(7)).ValueOrDie();
      SOI_CHECK(load.rate > 0) << "--rate must be positive";
    } else if (arg.rfind("--seconds=", 0) == 0) {
      load.seconds = ParseDouble(arg.substr(10)).ValueOrDie();
      SOI_CHECK(load.seconds > 0) << "--seconds must be positive";
    } else if (arg.rfind("--connections=", 0) == 0) {
      load.connections =
          static_cast<int>(ParseDouble(arg.substr(14)).ValueOrDie());
      SOI_CHECK(load.connections > 0) << "--connections must be positive";
    } else if (arg == "--smoke") {
      load.smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (load.smoke) {
    load.rate = 150.0;
    load.seconds = 1.0;
    load.connections = 4;
  }
  bench_util::BenchOptions options = bench_util::ParseBenchOptions(
      static_cast<int>(passthrough.size()), passthrough.data());

  std::vector<std::unique_ptr<bench_util::CityContext>> cities =
      bench_util::LoadCities(options);
  std::vector<CityServingRun> runs;
  TablePrinter table({"city", "requests", "ok", "shed", "p50 ms", "p99 ms",
                      "p999 ms"});
  for (const auto& city : cities) {
    CityServingRun run = ServeCity(*city, load);
    table.AddRow(
        {run.city, std::to_string(run.requests),
         std::to_string(run.outcome.ok),
         std::to_string(run.outcome.resource_exhausted),
         std::to_string(Percentile(run.outcome.latencies, 0.50) * 1e3),
         std::to_string(Percentile(run.outcome.latencies, 0.99) * 1e3),
         std::to_string(Percentile(run.outcome.latencies, 0.999) * 1e3)});
    runs.push_back(std::move(run));
  }
  table.Print(&std::cout);

  bench_util::BenchJsonFile out("soi_serving", options,
                                "BENCH_soi_serving.json");
  JsonWriter* json = out.json();
  json->KeyValue("smoke", load.smoke);
  json->Key("cities");
  json->BeginArray();
  for (const CityServingRun& run : runs) WriteCityJson(json, run, load);
  json->EndArray();
  out.Close();
  std::cout << "wrote BENCH_soi_serving.json\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Main(argc, argv); }
