// Ablation study (google-benchmark) for the diversification side:
// ST_Rel+Div vs the greedy baseline across photo-set sizes and summary
// sizes, plus the cost of the index/bounds construction itself.

#include <map>
#include <memory>

#include "benchmark/benchmark.h"
#include "common/check.h"
#include "common/random.h"
#include "core/diversify/greedy_baseline.h"
#include "core/diversify/st_rel_div.h"
#include "core/street_photos.h"
#include "network/network_builder.h"

namespace soi {
namespace {

// A synthetic single-street world with n photos: 40% in point clusters
// (near-duplicates), the rest spread along the street.
StreetPhotos MakeStreetPhotos(int64_t n) {
  NetworkBuilder builder;
  VertexId a = builder.AddVertex({0, 0});
  VertexId b = builder.AddVertex({0.01, 0});
  SOI_CHECK(builder.AddStreet("Bench Street", {a, b}).ok());
  static RoadNetwork* network =
      new RoadNetwork(std::move(builder).Build().ValueOrDie());

  Rng rng(99 + static_cast<uint64_t>(n));
  std::vector<Photo> photos;
  photos.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Photo photo;
    if (i % 5 < 2) {
      double cx = 0.002 + 0.002 * (i % 3);
      photo.position =
          Point{cx + rng.Normal(0, 0.00003), rng.Normal(0, 0.00003)};
      photo.keywords =
          KeywordSet({static_cast<KeywordId>(i % 3), 100, 101});
    } else {
      photo.position = Point{rng.UniformDouble(0, 0.01),
                             rng.UniformDouble(-0.0004, 0.0004)};
      std::vector<KeywordId> tags;
      int64_t count = rng.UniformInt(2, 6);
      for (int64_t t = 0; t < count; ++t) {
        tags.push_back(static_cast<KeywordId>(rng.UniformInt(0, 60)));
      }
      photo.keywords = KeywordSet(std::move(tags));
    }
    photos.push_back(std::move(photo));
  }
  static std::map<int64_t, std::vector<Photo>>* photo_store =
      new std::map<int64_t, std::vector<Photo>>();
  (*photo_store)[n] = std::move(photos);
  return ExtractStreetPhotosBruteForce(*network, 0, (*photo_store)[n],
                                       0.0005);
}

StreetPhotos& CachedStreetPhotos(int64_t n) {
  static std::map<int64_t, std::unique_ptr<StreetPhotos>>* cache =
      new std::map<int64_t, std::unique_ptr<StreetPhotos>>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n,
                        std::make_unique<StreetPhotos>(MakeStreetPhotos(n)))
             .first;
  }
  return *it->second;
}

DiversifyParams BaseParams(int32_t k) {
  DiversifyParams params;
  params.k = k;
  params.lambda = 0.5;
  params.w = 0.5;
  params.rho = 0.0001;
  return params;
}

void BM_GreedyBaseline(benchmark::State& state) {
  StreetPhotos& sp = CachedStreetPhotos(state.range(0));
  DiversifyParams params = BaseParams(static_cast<int32_t>(state.range(1)));
  PhotoScorer scorer(sp, params.rho);
  for (auto _ : state) {
    DiversifyResult result = GreedyBaselineSelect(scorer, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GreedyBaseline)
    ->ArgsProduct({{500, 2000, 8000}, {10, 20}})
    ->ArgNames({"photos", "k"})
    ->Unit(benchmark::kMillisecond);

void BM_StRelDiv(benchmark::State& state) {
  StreetPhotos& sp = CachedStreetPhotos(state.range(0));
  DiversifyParams params = BaseParams(static_cast<int32_t>(state.range(1)));
  PhotoScorer scorer(sp, params.rho);
  PhotoGridIndex index(params.rho / 2, sp.photos);
  CellBoundsCalculator bounds(sp, index);
  for (auto _ : state) {
    DiversifyResult result = StRelDivSelect(scorer, bounds, params);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_StRelDiv)
    ->ArgsProduct({{500, 2000, 8000}, {10, 20}})
    ->ArgNames({"photos", "k"})
    ->Unit(benchmark::kMillisecond);

void BM_IndexAndBoundsConstruction(benchmark::State& state) {
  StreetPhotos& sp = CachedStreetPhotos(state.range(0));
  DiversifyParams params = BaseParams(20);
  for (auto _ : state) {
    PhotoGridIndex index(params.rho / 2, sp.photos);
    CellBoundsCalculator bounds(sp, index);
    benchmark::DoNotOptimize(bounds);
  }
}
BENCHMARK(BM_IndexAndBoundsConstruction)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

void BM_ScorerConstruction(benchmark::State& state) {
  StreetPhotos& sp = CachedStreetPhotos(state.range(0));
  for (auto _ : state) {
    PhotoScorer scorer(sp, 0.0001);
    benchmark::DoNotOptimize(scorer);
  }
}
BENCHMARK(BM_ScorerConstruction)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace soi

BENCHMARK_MAIN();
