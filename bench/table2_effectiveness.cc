// Reproduces Table 2 / Section 5.1.1 of the paper: effectiveness of SOI
// identification. The paper queries "shop" over Berlin with k=10,
// eps=0.0005 and compares the returned streets against two authoritative
// web-source lists of 5 shopping streets each, reporting recall 0.8.
//
// Here the ground truth is the generator's planted hotspot streets and the
// two derived noisy "web source" lists (see DESIGN.md, Substitutions).

#include <algorithm>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/soi_algorithm.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);

  std::cout << "\nTable 2: Comparison of identified top SOIs for \"shop\""
            << " (k=10, eps=0.0005)\n";
  for (const auto& city : cities) {
    const Dataset& dataset = city->dataset;
    const CategoryGroundTruth* truth = dataset.ground_truth.Find("shop");
    SOI_CHECK(truth != nullptr);

    SoiQuery query;
    query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
    query.k = 10;
    query.eps = 0.0005;
    EpsAugmentedMaps maps(city->indexes->segment_cells, query.eps);
    SoiAlgorithm algorithm(dataset.network, city->indexes->poi_grid,
                           city->indexes->global_index);
    SoiResult result = algorithm.TopK(query, maps);

    std::cout << "\n--- " << city->profile.name << " ---\n\n";
    std::set<StreetId> source1(truth->web_sources[0].begin(),
                               truth->web_sources[0].end());
    std::set<StreetId> source2(truth->web_sources[1].begin(),
                               truth->web_sources[1].end());
    TablePrinter table({"Rank", "Top-10 SOIs", "Interest", "In source #1",
                        "In source #2"});
    for (size_t i = 0; i < result.streets.size(); ++i) {
      const RankedStreet& entry = result.streets[i];
      table.AddRow({std::to_string(i + 1),
                    dataset.network.street(entry.street).name,
                    FormatDouble(entry.interest, 1),
                    source1.count(entry.street) ? "yes" : "",
                    source2.count(entry.street) ? "yes" : ""});
    }
    table.Print(&std::cout);

    double recall1 =
        RecallAtK(result.streets, truth->web_sources[0], query.k);
    double recall2 =
        RecallAtK(result.streets, truth->web_sources[1], query.k);
    double recall_truth4 = RecallAtK(
        result.streets,
        std::vector<StreetId>(
            truth->hotspots.begin(),
            truth->hotspots.begin() +
                std::min<size_t>(4, truth->hotspots.size())),
        query.k);
    std::cout << "\nrecall@10 vs web source #1: " << FormatDouble(recall1, 2)
              << "   vs web source #2: " << FormatDouble(recall2, 2)
              << "   vs top-4 planted hotspots: "
              << FormatDouble(recall_truth4, 2) << "\n";
    std::cout << "(paper, Berlin, real web sources: 0.80 / 0.80)\n";
  }
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
