#ifndef SOI_BENCH_THROUGHPUT_BASELINE_H_
#define SOI_BENCH_THROUGHPUT_BASELINE_H_

#include <string>

namespace soi {
namespace bench_util {

/// Recorded steady-state 1-thread QPS of the pre-CSR serving path
/// (nested-vector indexes, per-query allocation, no batch coalescing),
/// measured by this same benchmark at --scale=0.1 on the reference
/// container. The throughput gate requires the current serving path to
/// clear 2x these numbers; bump them deliberately (with the bench output
/// in the PR) when the floor moves.
struct ThroughputBaseline {
  const char* city;
  double scale;
  double qps_1thread;
};

inline constexpr ThroughputBaseline kSeedThroughputBaselines[] = {
    {"London", 0.1, 83.2},
    {"Berlin", 0.1, 126.5},
    {"Vienna", 0.1, 303.5},
};

/// The recorded baseline for (city, scale), or nullptr when none was
/// recorded (non-default scale or city — the 2x gate does not apply).
inline const ThroughputBaseline* FindSeedBaseline(const std::string& city,
                                                  double scale) {
  for (const ThroughputBaseline& baseline : kSeedThroughputBaselines) {
    if (city == baseline.city && scale == baseline.scale) return &baseline;
  }
  return nullptr;
}

}  // namespace bench_util
}  // namespace soi

#endif  // SOI_BENCH_THROUGHPUT_BASELINE_H_
