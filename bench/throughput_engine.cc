// Batch-throughput benchmark for the parallel QueryEngine: a mixed-eps
// query workload is pushed through QueryEngine::RunBatch at 1/2/4/8
// threads, per city. Reports queries/sec, speedup over the 1-thread
// engine, and the eps-cache hit rate, plus the legacy no-cache sequential
// path (fresh EpsAugmentedMaps per query — the pre-engine cost model) for
// context. Machine-readable results go to BENCH_soi_throughput.json in
// the working directory so the perf trajectory is trackable across PRs.
//
// Every engine run is checked bit-identical to the 1-thread run (the
// determinism contract of DESIGN.md "Threading model").

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

struct EngineRun {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double speedup_vs_1thread = 0.0;
  double cache_hit_rate = 0.0;
  QueryEngine::CacheStats cache;
};

struct CityRun {
  std::string city;
  double baseline_nocache_seconds = 0.0;
  double baseline_nocache_qps = 0.0;
  std::vector<EngineRun> runs;
};

// A deterministic mixed workload: every (eps, k, |Psi|) combination,
// repeated and shuffled, so distinct eps values interleave and the
// per-eps memoization has both misses and hits.
std::vector<SoiQuery> MakeBatch(const Dataset& dataset) {
  constexpr double kEpsValues[] = {0.0004, 0.0005, 0.0007};
  constexpr int32_t kKValues[] = {10, 50};
  constexpr int kRepeats = 3;
  std::vector<SoiQuery> batch;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (double eps : kEpsValues) {
      for (int32_t k : kKValues) {
        for (int psi = 1; psi <= 4; ++psi) {
          SoiQuery query;
          query.keywords = bench_util::AccumulatedQueryKeywords(dataset, psi);
          query.k = k;
          query.eps = eps;
          batch.push_back(query);
        }
      }
    }
  }
  Rng rng(20260806);
  rng.Shuffle(&batch);
  return batch;
}

void CheckSameAnswers(const std::vector<SoiResult>& got,
                      const std::vector<SoiResult>& want) {
  SOI_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SOI_CHECK(got[i].streets.size() == want[i].streets.size());
    for (size_t r = 0; r < got[i].streets.size(); ++r) {
      SOI_CHECK(got[i].streets[r].street == want[i].streets[r].street &&
                got[i].streets[r].interest == want[i].streets[r].interest &&
                got[i].streets[r].best_segment ==
                    want[i].streets[r].best_segment)
          << "thread-count-dependent answer at query " << i << " rank " << r;
    }
  }
}

CityRun MeasureCity(const bench_util::CityContext& city) {
  CityRun out;
  out.city = city.profile.name;
  std::vector<SoiQuery> batch = MakeBatch(city.dataset);

  // Legacy path: sequential, one fresh augmentation per query.
  {
    SoiAlgorithm algorithm(city.dataset.network, city.indexes->poi_grid,
                           city.indexes->global_index);
    Stopwatch timer;
    for (const SoiQuery& query : batch) {
      EpsAugmentedMaps maps(city.indexes->segment_cells, query.eps);
      SoiResult result = algorithm.TopK(query, maps);
      (void)result;
    }
    out.baseline_nocache_seconds = timer.ElapsedSeconds();
    out.baseline_nocache_qps =
        static_cast<double>(batch.size()) / out.baseline_nocache_seconds;
  }

  std::vector<SoiResult> reference;
  for (int threads : {1, 2, 4, 8}) {
    QueryEngineOptions options;
    options.num_threads = threads;
    QueryEngine engine(city.dataset.network, city.indexes->poi_grid,
                       city.indexes->global_index,
                       city.indexes->segment_cells, options);
    // Warm-up pass (first-touch allocations, cache population), then the
    // timed pass on a warm cache — the steady-state serving shape.
    engine.RunBatch(batch);
    Stopwatch timer;
    std::vector<SoiResult> results = engine.RunBatch(batch);
    EngineRun run;
    run.threads = threads;
    run.seconds = timer.ElapsedSeconds();
    run.qps = static_cast<double>(batch.size()) / run.seconds;
    run.cache = engine.cache_stats();
    run.cache_hit_rate = run.cache.HitRate();
    if (threads == 1) {
      reference = results;
    } else {
      CheckSameAnswers(results, reference);
    }
    out.runs.push_back(run);
  }
  for (EngineRun& run : out.runs) {
    run.speedup_vs_1thread = run.seconds > 0.0
                                 ? out.runs.front().seconds / run.seconds
                                 : 0.0;
  }
  return out;
}

void WriteJson(const std::vector<CityRun>& cities, double scale,
               size_t batch_size, const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"benchmark\": \"soi_throughput\",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"batch_size\": " << batch_size << ",\n  \"cities\": [\n";
  for (size_t c = 0; c < cities.size(); ++c) {
    const CityRun& city = cities[c];
    json << "    {\n      \"city\": \"" << city.city << "\",\n"
         << "      \"baseline_nocache_qps\": "
         << FormatDouble(city.baseline_nocache_qps, 2) << ",\n"
         << "      \"runs\": [\n";
    for (size_t r = 0; r < city.runs.size(); ++r) {
      const EngineRun& run = city.runs[r];
      json << "        {\"threads\": " << run.threads
           << ", \"seconds\": " << FormatDouble(run.seconds, 6)
           << ", \"qps\": " << FormatDouble(run.qps, 2)
           << ", \"speedup_vs_1thread\": "
           << FormatDouble(run.speedup_vs_1thread, 3)
           << ", \"cache_hit_rate\": "
           << FormatDouble(run.cache_hit_rate, 3)
           << ", \"cache_hits\": " << run.cache.hits
           << ", \"cache_misses\": " << run.cache.misses << "}"
           << (r + 1 < city.runs.size() ? "," : "") << "\n";
    }
    json << "      ]\n    }" << (c + 1 < cities.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream file(path);
  SOI_CHECK(file.good()) << "cannot write " << path;
  file << json.str();
}

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);

  std::vector<CityRun> measured;
  size_t batch_size = 0;
  for (const auto& city : cities) {
    batch_size = MakeBatch(city->dataset).size();
    std::cout << "\nQueryEngine throughput (" << city->profile.name
              << "): " << batch_size << " mixed-eps queries\n\n";
    CityRun run = MeasureCity(*city);
    TablePrinter table({"threads", "batch time", "queries/s",
                        "speedup vs 1t", "cache hit rate"});
    for (const EngineRun& engine_run : run.runs) {
      table.AddRow({std::to_string(engine_run.threads),
                    FormatMillis(engine_run.seconds),
                    FormatDouble(engine_run.qps, 1),
                    FormatDouble(engine_run.speedup_vs_1thread, 2) + "x",
                    FormatDouble(engine_run.cache_hit_rate * 100, 1) + "%"});
    }
    table.AddRow({"legacy seq (no cache)",
                  FormatMillis(run.baseline_nocache_seconds),
                  FormatDouble(run.baseline_nocache_qps, 1),
                  FormatDouble(run.runs.front().seconds > 0
                                   ? run.baseline_nocache_seconds /
                                         run.runs.front().seconds
                                   : 0.0,
                               2) +
                      "x slower",
                  "-"});
    table.Print(&std::cout);
    measured.push_back(run);
  }

  WriteJson(measured, options.scale, batch_size,
            "BENCH_soi_throughput.json");
  std::cout << "\nWrote BENCH_soi_throughput.json. Thread speedups track "
               "the host's core count\n(single-core machines bottleneck at "
               "1x); the engine's cache advantage over the\nlegacy "
               "per-query augmentation shows in the last row.\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
