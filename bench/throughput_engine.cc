// Batch-throughput benchmark for the parallel QueryEngine: a mixed-eps
// query workload is pushed through QueryEngine::RunBatch at 1/2/4/8
// threads, per city. Reports queries/sec, speedup over the 1-thread
// engine, and the eps-cache hit rate, plus the legacy no-cache sequential
// path (fresh EpsAugmentedMaps per query — the pre-engine cost model) for
// context. Machine-readable results go to BENCH_soi_throughput.json in
// the working directory so the perf trajectory is trackable across PRs;
// every engine run now embeds its per-phase time breakdown (source-list
// construction / filtering / refinement / eps-map builds) and work
// counters, computed as metrics-registry deltas around the timed batch
// (each thread count reports the best of three warm passes — min-time
// filters scheduler jitter the gates would otherwise trip on), and one
// 8-thread batch of the first city is captured as a Chrome trace
// (TRACE_soi_throughput.json; open in chrome://tracing or
// https://ui.perfetto.dev).
//
// Every engine run is checked bit-identical to the 1-thread run (the
// determinism contract of DESIGN.md "Threading model").
//
// The bench is also a perf GATE (exit code 1 on violation):
//  - scaling: QPS must not degrade as threads grow — monotone up to a 5%
//    noise allowance through min(8, hardware threads), and within a 20%
//    allowance for oversubscribed thread counts beyond the hardware;
//  - floor: at the recorded-baseline scale (0.1), 1-thread QPS must be at
//    least 2x the seed serving path's (bench/throughput_baseline.h).
// `--smoke` runs a reduced thread set {1, 2} with the scaling gate only,
// sized for the `perf`-labeled ctest smoke run at small scale.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "eval/table_printer.h"
#include "obs/dump.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "throughput_baseline.h"

namespace soi {
namespace {

struct EngineRun {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double speedup_vs_1thread = 0.0;
  double cache_hit_rate = 0.0;
  QueryEngine::CacheStats cache;
  // Registry activity of the timed batch only (empty when observability
  // is compiled out).
  obs::MetricsSnapshot metrics;
  // Per-query wall-clock of the best timed pass, sorted ascending, from
  // the flight recorder (empty when observability is compiled out).
  // Coalesced duplicates are excluded: they piggyback on a leader and
  // would contribute fictitious ~0s samples.
  std::vector<double> latencies;
};

// Exact percentile of a sorted sample set (nearest-rank method).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

struct CityRun {
  std::string city;
  double baseline_nocache_seconds = 0.0;
  double baseline_nocache_qps = 0.0;
  std::vector<EngineRun> runs;
};

// A deterministic mixed workload: every (eps, k, |Psi|) combination,
// repeated and shuffled, so distinct eps values interleave and the
// per-eps memoization has both misses and hits.
std::vector<SoiQuery> MakeBatch(const Dataset& dataset) {
  constexpr double kEpsValues[] = {0.0004, 0.0005, 0.0007};
  constexpr int32_t kKValues[] = {10, 50};
  constexpr int kRepeats = 3;
  std::vector<SoiQuery> batch;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    for (double eps : kEpsValues) {
      for (int32_t k : kKValues) {
        for (int psi = 1; psi <= 4; ++psi) {
          SoiQuery query;
          query.keywords = bench_util::AccumulatedQueryKeywords(dataset, psi);
          query.k = k;
          query.eps = eps;
          batch.push_back(query);
        }
      }
    }
  }
  Rng rng(20260806);
  rng.Shuffle(&batch);
  return batch;
}

void CheckSameAnswers(const std::vector<SoiResult>& got,
                      const std::vector<SoiResult>& want) {
  SOI_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SOI_CHECK(got[i].streets.size() == want[i].streets.size());
    for (size_t r = 0; r < got[i].streets.size(); ++r) {
      SOI_CHECK(got[i].streets[r].street == want[i].streets[r].street &&
                got[i].streets[r].interest == want[i].streets[r].interest &&
                got[i].streets[r].best_segment ==
                    want[i].streets[r].best_segment)
          << "thread-count-dependent answer at query " << i << " rank " << r;
    }
  }
}

// `capture_trace`: record the timed max-thread batch into the global
// trace recorder (left stopped afterwards, events retained for export).
CityRun MeasureCity(const bench_util::CityContext& city,
                    const std::vector<int>& thread_counts,
                    bool capture_trace) {
  CityRun out;
  out.city = city.profile.name;
  std::vector<SoiQuery> batch = MakeBatch(city.dataset);

  // Legacy path: sequential, one fresh augmentation per query.
  {
    SoiAlgorithm algorithm(city.dataset.network, city.indexes->poi_grid,
                           city.indexes->global_index);
    Stopwatch timer;
    for (const SoiQuery& query : batch) {
      EpsAugmentedMaps maps(city.indexes->segment_cells, query.eps);
      SoiResult result = algorithm.TopK(query, maps);
      (void)result;
    }
    out.baseline_nocache_seconds = timer.ElapsedSeconds();
    out.baseline_nocache_qps =
        static_cast<double>(batch.size()) / out.baseline_nocache_seconds;
  }

  // Each thread count reports the best of kTimedRepeats warm passes: a
  // single batch can lose double-digit percentages to scheduler jitter
  // on a noisy or oversubscribed host, and the scaling gates below
  // compare these numbers directly — min-time is the standard filter.
  constexpr int kTimedRepeats = 3;
  std::vector<SoiResult> reference;
  for (int threads : thread_counts) {
    QueryEngineOptions options;
    options.num_threads = threads;
    QueryEngine engine(city.dataset.network, city.indexes->poi_grid,
                       city.indexes->global_index,
                       city.indexes->segment_cells, options);
    // Warm-up pass (first-touch allocations, cache population), then the
    // timed passes on a warm cache — the steady-state serving shape.
    engine.RunBatch(batch);
    bool tracing = capture_trace && threads == thread_counts.back();
    EngineRun run;
    run.threads = threads;
    for (int rep = 0; rep < kTimedRepeats; ++rep) {
      bool trace_this = tracing && rep == 0;
      if (trace_this) obs::TraceRecorder::Global().Start();
      obs::MetricsSnapshot before = obs::Registry::Global().Snapshot();
      // Query ids are monotone, so records of this pass are exactly those
      // with id > the recorder's watermark taken here.
      uint64_t flight_watermark = 0;
      if (obs::kEnabled) {
        flight_watermark = obs::FlightRecorder::Global().last_query_id();
      }
      Stopwatch timer;
      std::vector<SoiResult> results = engine.RunBatch(batch);
      double seconds = timer.ElapsedSeconds();
      obs::MetricsSnapshot delta =
          obs::Registry::Global().Snapshot().Since(before);
      std::vector<double> latencies;
      if (obs::kEnabled) {
        obs::FlightRecorder::Snapshot flights =
            obs::FlightRecorder::Global().Snap();
        for (const obs::QueryRecord& record : flights.recent) {
          if (record.query_id > flight_watermark && !record.coalesced) {
            latencies.push_back(record.total_seconds);
          }
        }
        std::sort(latencies.begin(), latencies.end());
      }
      if (trace_this) obs::TraceRecorder::Global().Stop();
      if (reference.empty()) {
        reference = std::move(results);  // the 1-thread rep 0 pass
      } else {
        CheckSameAnswers(results, reference);
      }
      if (rep == 0 || seconds < run.seconds) {
        run.seconds = seconds;
        run.metrics = std::move(delta);
        run.latencies = std::move(latencies);
      }
    }
    run.qps = static_cast<double>(batch.size()) / run.seconds;
    run.cache = engine.cache_stats();
    run.cache_hit_rate = run.cache.HitRate();
    out.runs.push_back(run);
  }
  for (EngineRun& run : out.runs) {
    run.speedup_vs_1thread = run.seconds > 0.0
                                 ? out.runs.front().seconds / run.seconds
                                 : 0.0;
  }
  return out;
}

double HistogramSum(const obs::MetricsSnapshot& metrics,
                    const std::string& name) {
  const obs::Histogram::Snapshot* histogram = metrics.FindHistogram(name);
  return histogram != nullptr ? histogram->sum : 0.0;
}

struct GateResult {
  std::string name;
  bool pass = false;
  std::string detail;
};

// The scaling gate: adding threads must not lose throughput. Within the
// hardware's core budget the requirement is monotone QPS between
// adjacent thread counts up to a 5% measurement-noise allowance. Thread
// counts beyond the hardware (every count > 1 on a 1-core CI box) only
// assert that oversubscription does not *collapse* throughput, and they
// compare against the best within-hardware run rather than the adjacent
// count: adjacent oversubscribed points are both noisy, so chaining
// their ratios multiplies jitter into spurious failures, while a real
// contention collapse (a lock convoy, a refcount storm) loses several
// multiples — far below the 40% allowance that covers honest
// context-switch overhead on a sub-hardware box.
constexpr double kMonotoneNoiseFactor = 0.95;
constexpr double kOversubscribedCollapseFactor = 0.60;

std::vector<GateResult> CheckGates(const CityRun& city, double scale,
                                   bool smoke, unsigned hardware_threads) {
  std::vector<GateResult> gates;
  // The 1-thread run is always within the hardware budget, so it
  // anchors the best-within-hardware reference unconditionally.
  double best_within_hw = city.runs.empty() ? 0.0 : city.runs.front().qps;
  for (const EngineRun& run : city.runs) {
    if (static_cast<unsigned>(run.threads) <= hardware_threads) {
      best_within_hw = std::max(best_within_hw, run.qps);
    }
  }
  for (size_t i = 1; i < city.runs.size(); ++i) {
    const EngineRun& prev = city.runs[i - 1];
    const EngineRun& next = city.runs[i];
    bool within_hw =
        static_cast<unsigned>(next.threads) <= hardware_threads;
    GateResult gate;
    if (within_hw) {
      gate.name = "scaling_" + std::to_string(prev.threads) + "t_to_" +
                  std::to_string(next.threads) + "t";
      gate.pass = next.qps >= kMonotoneNoiseFactor * prev.qps;
      gate.detail = FormatDouble(next.qps, 1) + " qps at " +
                    std::to_string(next.threads) + "t vs " +
                    FormatDouble(prev.qps, 1) + " at " +
                    std::to_string(prev.threads) + "t (floor " +
                    FormatDouble(kMonotoneNoiseFactor * prev.qps, 1) +
                    ", within hardware)";
    } else {
      gate.name = "no_collapse_" + std::to_string(next.threads) + "t";
      gate.pass =
          next.qps >= kOversubscribedCollapseFactor * best_within_hw;
      gate.detail = FormatDouble(next.qps, 1) + " qps at " +
                    std::to_string(next.threads) + "t vs best " +
                    FormatDouble(best_within_hw, 1) +
                    " within hardware (floor " +
                    FormatDouble(
                        kOversubscribedCollapseFactor * best_within_hw, 1) +
                    ", oversubscribed)";
    }
    gates.push_back(std::move(gate));
  }
  if (!smoke) {
    const bench_util::ThroughputBaseline* baseline =
        bench_util::FindSeedBaseline(city.city, scale);
    if (baseline != nullptr && !city.runs.empty()) {
      const EngineRun& single = city.runs.front();
      GateResult gate;
      gate.name = "qps_2x_seed_baseline";
      gate.pass = single.qps >= 2.0 * baseline->qps_1thread;
      gate.detail = FormatDouble(single.qps, 1) + " qps at 1t vs seed " +
                    FormatDouble(baseline->qps_1thread, 1) + " (floor " +
                    FormatDouble(2.0 * baseline->qps_1thread, 1) + ")";
      gates.push_back(std::move(gate));
    }
  }
  return gates;
}

void WriteRunJson(JsonWriter* json, const EngineRun& run) {
  json->BeginObject();
  json->KeyValue("threads", run.threads);
  json->KeyValue("seconds", run.seconds);
  json->KeyValue("qps", run.qps);
  json->KeyValue("speedup_vs_1thread", run.speedup_vs_1thread);
  json->KeyValue("cache_hit_rate", run.cache_hit_rate);
  json->KeyValue("cache_hits", run.cache.hits);
  json->KeyValue("cache_misses", run.cache.misses);
  json->KeyValue("cache_evictions", run.cache.evictions);

  // Per-query latency distribution of the best pass, from the flight
  // recorder (absent under SOI_OBSERVABILITY=OFF). Exact percentiles
  // over all executed (non-coalesced) queries of the batch — small
  // samples, so no histogram-bucket interpolation error.
  if (!run.latencies.empty()) {
    json->Key("latency");
    json->BeginObject();
    json->KeyValue("samples", static_cast<int64_t>(run.latencies.size()));
    json->KeyValue("p50_seconds", Percentile(run.latencies, 0.50));
    json->KeyValue("p99_seconds", Percentile(run.latencies, 0.99));
    json->KeyValue("p999_seconds", Percentile(run.latencies, 0.999));
    json->KeyValue("max_seconds", run.latencies.back());
    json->EndObject();
  }

  // Per-phase wall-clock totals of the timed batch, summed across
  // worker threads (so phases can exceed `seconds` when threads > 1).
  json->Key("phases");
  json->BeginObject();
  json->KeyValue("index_build_seconds",
                 HistogramSum(run.metrics, "soi.cache.build_seconds"));
  json->KeyValue("lists_seconds",
                 HistogramSum(run.metrics, "soi.query.lists_seconds"));
  json->KeyValue("filter_seconds",
                 HistogramSum(run.metrics, "soi.query.filter_seconds"));
  json->KeyValue("refine_seconds",
                 HistogramSum(run.metrics, "soi.query.refine_seconds"));
  json->KeyValue("pool_queue_wait_seconds",
                 HistogramSum(run.metrics, "soi.pool.queue_wait_seconds"));
  json->EndObject();

  json->Key("counters");
  json->BeginObject();
  for (const char* name :
       {"soi.query.count", "soi.query.iterations", "soi.query.cells_popped",
        "soi.query.segments_popped", "soi.query.segments_seen",
        "soi.query.segments_finalized_in_refinement",
        "soi.query.poi_distance_checks", "soi.cache.builds",
        "soi.pool.tasks",
        // Allocation / contention shape of the timed batch: scratch-arena
        // reuse (created should be ~num_threads, reused everything else),
        // coalesced duplicate queries, and how often the eps lookup had
        // to take cache_mutex_ (0 on a warm cache = contention-free).
        "soi.scratch.created", "soi.scratch.reused",
        "soi.engine.batch_coalesced", "soi.cache.locked_path",
        // Serving-path failure counters (DESIGN.md "Failure model") —
        // all zero in this healthy unbounded workload, recorded so a
        // regression that starts shedding or timing out is visible in
        // the trajectory.
        "soi.engine.shed", "soi.engine.deadline_exceeded",
        "soi.engine.cancelled"}) {
    json->KeyValue(name, run.metrics.CounterOr0(name));
  }
  json->EndObject();
  json->EndObject();
}

void WriteJson(const std::vector<CityRun>& cities,
               const std::vector<std::vector<GateResult>>& gates,
               const bench_util::BenchOptions& options, size_t batch_size,
               bool smoke, unsigned hardware_threads,
               const std::string& path) {
  bench_util::BenchJsonFile out("soi_throughput", options, path);
  JsonWriter* json = out.json();
  json->KeyValue("batch_size", static_cast<int64_t>(batch_size));
  json->KeyValue("observability", obs::kEnabled);
  json->KeyValue("smoke", smoke);
  json->KeyValue("hardware_threads",
                 static_cast<int64_t>(hardware_threads));
  json->Key("cities");
  json->BeginArray();
  for (size_t c = 0; c < cities.size(); ++c) {
    const CityRun& city = cities[c];
    json->BeginObject();
    json->KeyValue("city", city.city);
    json->KeyValue("baseline_nocache_qps", city.baseline_nocache_qps);
    json->Key("runs");
    json->BeginArray();
    for (const EngineRun& run : city.runs) WriteRunJson(json, run);
    json->EndArray();
    json->Key("gates");
    json->BeginArray();
    for (const GateResult& gate : gates[c]) {
      json->BeginObject();
      json->KeyValue("name", gate.name);
      json->KeyValue("pass", gate.pass);
      json->KeyValue("detail", gate.detail);
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndArray();
  out.Close();
}

int Run(int argc, char** argv) {
  // --smoke is this binary's own flag; strip it before the shared parser
  // (which rejects flags it does not know).
  bool smoke = false;
  std::vector<char*> filtered_argv;
  filtered_argv.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
      continue;
    }
    filtered_argv.push_back(argv[i]);
  }
  bench_util::BenchOptions options = bench_util::ParseBenchOptions(
      static_cast<int>(filtered_argv.size()), filtered_argv.data());
  // Live introspection: SIGUSR1 snapshots the metrics + flight recorder
  // of a running (possibly long, full-scale) bench. Best-effort — the
  // bench must run on platforms without the hook.
  if (obs::kEnabled) {
    (void)obs::InstallSignalDump("SOI_STATE_throughput.json");
  }
  auto cities = bench_util::LoadCities(options);
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const unsigned hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());

  std::vector<CityRun> measured;
  std::vector<std::vector<GateResult>> gates;
  size_t batch_size = 0;
  for (const auto& city : cities) {
    batch_size = MakeBatch(city->dataset).size();
    std::cout << "\nQueryEngine throughput (" << city->profile.name
              << "): " << batch_size << " mixed-eps queries\n\n";
    // One Chrome trace per bench invocation: the max-thread batch of the
    // first city.
    CityRun run =
        MeasureCity(*city, thread_counts, /*capture_trace=*/measured.empty());
    TablePrinter table({"threads", "batch time", "queries/s",
                        "speedup vs 1t", "cache hit rate"});
    for (const EngineRun& engine_run : run.runs) {
      table.AddRow({std::to_string(engine_run.threads),
                    FormatMillis(engine_run.seconds),
                    FormatDouble(engine_run.qps, 1),
                    FormatDouble(engine_run.speedup_vs_1thread, 2) + "x",
                    FormatDouble(engine_run.cache_hit_rate * 100, 1) + "%"});
    }
    table.AddRow({"legacy seq (no cache)",
                  FormatMillis(run.baseline_nocache_seconds),
                  FormatDouble(run.baseline_nocache_qps, 1),
                  FormatDouble(run.runs.front().seconds > 0
                                   ? run.baseline_nocache_seconds /
                                         run.runs.front().seconds
                                   : 0.0,
                               2) +
                      "x slower",
                  "-"});
    table.Print(&std::cout);

    if (obs::kEnabled && !run.runs.empty()) {
      // Per-phase breakdown of the 1-thread timed batch (thread counts
      // only shift work across cores; the per-phase shape is the same).
      const EngineRun& first = run.runs.front();
      std::cout << "\nPer-phase wall clock (1 thread): lists "
                << FormatMillis(HistogramSum(first.metrics,
                                             "soi.query.lists_seconds"))
                << ", filter "
                << FormatMillis(HistogramSum(first.metrics,
                                             "soi.query.filter_seconds"))
                << ", refine "
                << FormatMillis(HistogramSum(first.metrics,
                                             "soi.query.refine_seconds"))
                << ", eps-map builds "
                << FormatMillis(HistogramSum(first.metrics,
                                             "soi.cache.build_seconds"))
                << "\n";
    }
    gates.push_back(
        CheckGates(run, options.scale, smoke, hardware_threads));
    measured.push_back(run);
  }

  WriteJson(measured, gates, options, batch_size, smoke, hardware_threads,
            "BENCH_soi_throughput.json");
  std::cout << "\nWrote BENCH_soi_throughput.json. Thread speedups track "
               "the host's core count\n(single-core machines bottleneck at "
               "1x); the engine's cache advantage over the\nlegacy "
               "per-query augmentation shows in the last row.\n";

  bool gates_pass = true;
  std::cout << "\nPerf gates (" << hardware_threads
            << " hardware thread(s)):\n";
  for (size_t c = 0; c < measured.size(); ++c) {
    for (const GateResult& gate : gates[c]) {
      std::cout << "  [" << (gate.pass ? "PASS" : "FAIL") << "] "
                << measured[c].city << " " << gate.name << ": "
                << gate.detail << "\n";
      gates_pass = gates_pass && gate.pass;
    }
  }
  if (!gates_pass) {
    std::cout << "\nPERF GATE FAILURE: the serving path regressed (or the "
                 "recorded baseline in\nbench/throughput_baseline.h is "
                 "stale — update it deliberately, with numbers).\n";
  }
  if (obs::kEnabled) {
    Status trace_status = obs::TraceRecorder::Global().WriteChromeTrace(
        "TRACE_soi_throughput.json");
    SOI_CHECK(trace_status.ok()) << trace_status.ToString();
    std::cout << "Wrote TRACE_soi_throughput.json ("
              << obs::TraceRecorder::Global().Collect().size()
              << " spans; open in chrome://tracing or ui.perfetto.dev).\n";
  }
  return gates_pass ? 0 : 1;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
