// Reproduces Figure 5 of the paper: the relevance/diversity trade-off of
// the constructed photo summary of the top SOI in each city as lambda goes
// from 0 to 1 in steps of 0.25 (k=20, w=0.5). Relevance (Eq. 4) and
// diversity (Eq. 5) are normalized per city by their maxima across the
// lambda sweep, as in the paper's normalized plot.
//
// Expected shape: relevance decreases and diversity increases with lambda;
// lambda = 0.5 buys most of the achievable diversity for a modest
// relevance sacrifice (the knee the paper uses to justify lambda = 0.5).

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/diversify/greedy_baseline.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);
  double eps = 0.0005;

  bench_util::BenchJsonFile out("fig5_tradeoff", options,
                                "BENCH_fig5_tradeoff.json");
  JsonWriter* json = out.json();
  json->KeyValue("eps", eps);
  json->KeyValue("k", 20);
  json->KeyValue("w", 0.5);
  json->Key("cities");
  json->BeginArray();

  std::cout << "\nFigure 5: Trade-off between relevance and diversity "
               "(k=20, w=0.5)\n";
  for (const auto& city : cities) {
    const Dataset& dataset = city->dataset;
    SoiQuery query;
    query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
    query.k = 1;
    query.eps = eps;
    EpsAugmentedMaps maps(city->indexes->segment_cells, eps);
    SoiAlgorithm algorithm(dataset.network, city->indexes->poi_grid,
                           city->indexes->global_index);
    StreetId top = algorithm.TopK(query, maps).streets[0].street;
    StreetPhotos sp = ExtractStreetPhotos(dataset.network, top,
                                          dataset.photos,
                                          city->indexes->photo_grid, eps);
    SOI_CHECK(sp.size() > 20);

    DiversifyParams params;
    params.k = 20;
    params.w = 0.5;
    params.rho = 0.0001;
    PhotoScorer scorer(sp, params.rho);

    std::vector<double> lambdas = {0.0, 0.25, 0.5, 0.75, 1.0};
    std::vector<double> relevances;
    std::vector<double> diversities;
    for (double lambda : lambdas) {
      params.lambda = lambda;
      DiversifyResult result = GreedyBaselineSelect(scorer, params);
      relevances.push_back(scorer.SetRelevance(result.selected, params.w));
      diversities.push_back(scorer.SetDiversity(result.selected, params.w));
    }
    std::vector<double> norm_rel = NormalizeByMax(relevances);
    std::vector<double> norm_div = NormalizeByMax(diversities);

    std::cout << "\n--- " << city->profile.name << " (top SOI \""
              << dataset.network.street(top).name << "\", |R_s|="
              << sp.size() << ") ---\n\n";
    TablePrinter table({"lambda", "relevance (Eq.4)", "diversity (Eq.5)",
                        "norm. rel", "norm. div"});
    json->BeginObject();
    json->KeyValue("city", city->profile.name);
    json->KeyValue("street", dataset.network.street(top).name);
    json->KeyValue("num_photos", static_cast<int64_t>(sp.size()));
    json->Key("sweep");
    json->BeginArray();
    for (size_t i = 0; i < lambdas.size(); ++i) {
      table.AddRow({FormatDouble(lambdas[i], 2),
                    FormatDouble(relevances[i], 4),
                    FormatDouble(diversities[i], 4),
                    FormatDouble(norm_rel[i], 3),
                    FormatDouble(norm_div[i], 3)});
      json->BeginObject();
      json->KeyValue("lambda", lambdas[i]);
      json->KeyValue("relevance", relevances[i]);
      json->KeyValue("diversity", diversities[i]);
      json->KeyValue("norm_relevance", norm_rel[i]);
      json->KeyValue("norm_diversity", norm_div[i]);
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
    table.Print(&std::cout);
  }
  json->EndArray();
  out.Close();
  std::cout << "\nWrote BENCH_fig5_tradeoff.json.\n"
               "Paper shape: monotone trade-off; at lambda=0.5 diversity "
               "is already ~0.85-0.95\nnormalized while relevance stays "
               "high (e.g. Vienna: give up 0.22 rel for 0.87 div).\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
