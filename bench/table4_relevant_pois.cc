// Reproduces Table 4 of the paper: the number of POIs relevant to the
// accumulated query keyword sets {religion}, {religion, education}, ... up
// to |Psi| = 4, per city. The generator's category fractions are tuned to
// the paper's ratios, so at scale s the counts should be roughly s times
// the paper's numbers.

#include <iostream>

#include "bench_util.h"
#include "eval/table_printer.h"
#include "objects/poi.h"

namespace soi {
namespace {

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);

  std::cout << "\nTable 4: Relevant POIs according to |Psi| (scale="
            << options.scale << ")\n\n";
  TablePrinter table(
      {"Dataset", "|Psi|=1", "|Psi|=2", "|Psi|=3", "|Psi|=4"});
  for (const auto& city : cities) {
    std::vector<std::string> row = {city->profile.name};
    for (int count = 1; count <= 4; ++count) {
      KeywordSet query =
          bench_util::AccumulatedQueryKeywords(city->dataset, count);
      row.push_back(
          std::to_string(CountRelevantPois(city->dataset.pois, query)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(&std::cout);
  std::cout << "\nPaper (scale=1.0): London 10445/32682/113211/202127, "
               "Berlin 1969/10506/47950/78310,\n"
               "                   Vienna 1678/7660/25695/41484\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
