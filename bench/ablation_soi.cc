// Ablation study (google-benchmark) for the SOI algorithm's design
// choices, called out in DESIGN.md: source-list access strategy, pruned
// vs full refinement, and grid cell size. Run with --benchmark_filter=...
// to narrow.

#include <map>
#include <memory>

#include "benchmark/benchmark.h"
#include "common/check.h"
#include "core/soi_algorithm.h"
#include "core/soi_baseline.h"
#include "datagen/dataset.h"

namespace soi {
namespace {

// One shared small city (Vienna preset at 1/20 scale) so every benchmark
// measures the same workload; built once on first use.
struct World {
  Dataset dataset;
  std::unique_ptr<DatasetIndexes> indexes;
  std::unique_ptr<EpsAugmentedMaps> maps;
  double eps = 0.0005;

  explicit World(double cell_size) {
    CityProfile profile = ViennaProfile(0.05);
    auto generated = GenerateCity(profile);
    SOI_CHECK(generated.ok());
    dataset = std::move(generated).ValueOrDie();
    indexes = BuildIndexes(dataset, cell_size);
    maps = std::make_unique<EpsAugmentedMaps>(indexes->segment_cells, eps);
  }
};

World& SharedWorld() {
  static World* world = new World(/*cell_size=*/0.0005);
  return *world;
}

SoiQuery MakeQuery(const Dataset& dataset, int32_t k) {
  SoiQuery query;
  query.keywords = KeywordSet({dataset.vocabulary.Find("shop"),
                               dataset.vocabulary.Find("food")});
  query.k = k;
  query.eps = 0.0005;
  return query;
}

void BM_SoiStrategy(benchmark::State& state) {
  World& world = SharedWorld();
  SoiAlgorithm algorithm(world.dataset.network, world.indexes->poi_grid,
                         world.indexes->global_index);
  SoiQuery query = MakeQuery(world.dataset, 20);
  SoiAlgorithmOptions options;
  options.strategy = static_cast<SourceListStrategy>(state.range(0));
  int64_t segments_seen = 0;
  for (auto _ : state) {
    SoiResult result = algorithm.TopK(query, *world.maps, options);
    segments_seen = result.stats.segments_seen;
    benchmark::DoNotOptimize(result);
  }
  state.counters["segments_seen"] = static_cast<double>(segments_seen);
}
BENCHMARK(BM_SoiStrategy)
    ->Arg(static_cast<int>(SourceListStrategy::kAlternateCellsSegments))
    ->Arg(static_cast<int>(SourceListStrategy::kRoundRobin))
    ->Arg(static_cast<int>(SourceListStrategy::kCellsFirst))
    ->Unit(benchmark::kMillisecond);

void BM_SoiRefinement(benchmark::State& state) {
  World& world = SharedWorld();
  SoiAlgorithm algorithm(world.dataset.network, world.indexes->poi_grid,
                         world.indexes->global_index);
  SoiQuery query = MakeQuery(world.dataset, 20);
  SoiAlgorithmOptions options;
  options.pruned_refinement = state.range(0) != 0;
  int64_t finalized = 0;
  for (auto _ : state) {
    SoiResult result = algorithm.TopK(query, *world.maps, options);
    finalized = result.stats.segments_finalized_in_refinement;
    benchmark::DoNotOptimize(result);
  }
  state.counters["segments_finalized"] = static_cast<double>(finalized);
}
BENCHMARK(BM_SoiRefinement)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SoiCellSize(benchmark::State& state) {
  // Cell size in 1e-5 degree units: 25 -> 0.00025 etc.
  double cell_size = state.range(0) * 1e-5;
  static std::map<int64_t, std::unique_ptr<World>>* worlds =
      new std::map<int64_t, std::unique_ptr<World>>();
  auto it = worlds->find(state.range(0));
  if (it == worlds->end()) {
    it = worlds->emplace(state.range(0), std::make_unique<World>(cell_size))
             .first;
  }
  World& world = *it->second;
  SoiAlgorithm algorithm(world.dataset.network, world.indexes->poi_grid,
                         world.indexes->global_index);
  SoiQuery query = MakeQuery(world.dataset, 20);
  for (auto _ : state) {
    SoiResult result = algorithm.TopK(query, *world.maps);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SoiCellSize)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_SoiVsBaseline(benchmark::State& state) {
  World& world = SharedWorld();
  SoiQuery query = MakeQuery(world.dataset, static_cast<int32_t>(
                                                state.range(1)));
  if (state.range(0) == 0) {
    SoiAlgorithm algorithm(world.dataset.network, world.indexes->poi_grid,
                           world.indexes->global_index);
    for (auto _ : state) {
      SoiResult result = algorithm.TopK(query, *world.maps);
      benchmark::DoNotOptimize(result);
    }
  } else {
    SoiBaseline baseline(world.dataset.network, world.indexes->poi_grid);
    for (auto _ : state) {
      SoiResult result = baseline.TopK(query, *world.maps);
      benchmark::DoNotOptimize(result);
    }
  }
}
BENCHMARK(BM_SoiVsBaseline)
    ->ArgsProduct({{0, 1}, {1, 10, 100}})
    ->ArgNames({"algo(0=SOI,1=BL)", "k"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace soi

BENCHMARK_MAIN();
