// Warm-start benchmark (DESIGN.md "Persistence & warm start"): per city,
// measures the cold serving path (BuildIndexes + eps-augmentation builds)
// against snapshot save + load, checks the warm-started QueryEngine
// answers bit-identically to the cold one, and reports the snapshot's
// per-section sizes. Machine-readable results go to
// BENCH_soi_warm_start.json in the working directory; the acceptance bar
// is load strictly faster than the cold build it replaces.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/query_engine.h"
#include "eval/table_printer.h"
#include "snapshot/snapshot.h"

namespace soi {
namespace {

constexpr double kEpsValues[] = {0.0004, 0.0005, 0.0007};
constexpr double kCellSize = 0.0005;

struct CityRun {
  std::string city;
  double cold_build_seconds = 0.0;  // BuildIndexes + all eps builds
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  double speedup = 0.0;  // cold_build_seconds / load_seconds
  uint64_t snapshot_bytes = 0;
  SnapshotInfo info;
};

std::vector<SoiQuery> MakeProbeBatch(const Dataset& dataset) {
  std::vector<SoiQuery> batch;
  for (double eps : kEpsValues) {
    for (int psi = 1; psi <= 4; ++psi) {
      SoiQuery query;
      query.keywords = bench_util::AccumulatedQueryKeywords(dataset, psi);
      query.k = 20;
      query.eps = eps;
      batch.push_back(query);
    }
  }
  return batch;
}

void CheckSameAnswers(const std::vector<SoiResult>& got,
                      const std::vector<SoiResult>& want) {
  SOI_CHECK(got.size() == want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SOI_CHECK(got[i].streets.size() == want[i].streets.size());
    for (size_t r = 0; r < got[i].streets.size(); ++r) {
      SOI_CHECK(got[i].streets[r].street == want[i].streets[r].street &&
                got[i].streets[r].interest == want[i].streets[r].interest &&
                got[i].streets[r].best_segment ==
                    want[i].streets[r].best_segment)
          << "warm-start answer differs at query " << i << " rank " << r;
    }
  }
}

CityRun MeasureCity(const Dataset& dataset) {
  CityRun out;
  out.city = dataset.name;
  std::string path = "BENCH_warm_start_" + dataset.name + ".snapshot";

  // Cold path: everything a process restart has to redo without a
  // snapshot — offline index suite plus the per-eps augmentations.
  Stopwatch cold_timer;
  std::unique_ptr<DatasetIndexes> indexes = BuildIndexes(dataset, kCellSize);
  std::vector<std::unique_ptr<EpsAugmentedMaps>> cold_maps;
  for (double eps : kEpsValues) {
    cold_maps.push_back(
        std::make_unique<EpsAugmentedMaps>(indexes->segment_cells, eps));
  }
  out.cold_build_seconds = cold_timer.ElapsedSeconds();

  SnapshotContents contents;
  contents.dataset = &dataset;
  contents.indexes = indexes.get();
  for (const std::unique_ptr<EpsAugmentedMaps>& maps : cold_maps) {
    contents.eps_maps.push_back(maps.get());
  }
  Stopwatch save_timer;
  Status saved = SaveSnapshotToFile(contents, path);
  SOI_CHECK(saved.ok()) << saved.ToString();
  out.save_seconds = save_timer.ElapsedSeconds();

  Stopwatch load_timer;
  Result<LoadedSnapshot> loaded = LoadSnapshotFromFile(path);
  SOI_CHECK(loaded.ok()) << loaded.status().ToString();
  out.load_seconds = load_timer.ElapsedSeconds();
  out.speedup = out.cold_build_seconds / out.load_seconds;

  Result<SnapshotInfo> info = InspectSnapshotFile(path);
  SOI_CHECK(info.ok()) << info.status().ToString();
  out.info = info.ValueOrDie();
  out.snapshot_bytes = out.info.total_bytes;

  // Determinism probe: a cold engine and a warm-started engine over the
  // restored state must answer bit-identically.
  const LoadedSnapshot& snap = loaded.ValueOrDie();
  std::vector<SoiQuery> batch = MakeProbeBatch(dataset);
  QueryEngineOptions options;
  options.eps_cache_capacity = sizeof(kEpsValues) / sizeof(kEpsValues[0]);
  QueryEngine cold_engine(dataset.network, indexes->poi_grid,
                          indexes->global_index, indexes->segment_cells,
                          options);
  QueryEngine warm_engine(snap.dataset->network, snap.indexes->poi_grid,
                          snap.indexes->global_index,
                          snap.indexes->segment_cells, options,
                          snap.eps_maps);
  CheckSameAnswers(warm_engine.RunBatch(batch), cold_engine.RunBatch(batch));
  // The warm engine served every eps from the preloaded maps.
  SOI_CHECK(warm_engine.cache_stats().misses == 0)
      << "warm-start engine rebuilt maps it was seeded with";

  std::remove(path.c_str());
  return out;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) {
  using namespace soi;
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  std::vector<std::unique_ptr<bench_util::CityContext>> cities =
      bench_util::LoadCities(options);

  std::vector<CityRun> runs;
  for (const std::unique_ptr<bench_util::CityContext>& city : cities) {
    runs.push_back(MeasureCity(city->dataset));
  }

  TablePrinter table({"city", "cold build", "save", "load", "speedup",
                      "snapshot MB"});
  for (const CityRun& run : runs) {
    // The two-argument FormatDouble is eval/table_printer.h's
    // fixed-precision formatter (the one-argument round-trippable
    // overload lives in common/string_util.h).
    table.AddRow({run.city, FormatMillis(run.cold_build_seconds),
                  FormatMillis(run.save_seconds),
                  FormatMillis(run.load_seconds),
                  FormatDouble(run.speedup, 2),
                  FormatDouble(static_cast<double>(run.snapshot_bytes) /
                                   (1024.0 * 1024.0),
                               2)});
  }
  table.Print(&std::cout);

  bench_util::BenchJsonFile out("soi_warm_start", options,
                                "BENCH_soi_warm_start.json");
  JsonWriter* json = out.json();
  json->KeyValue("cell_size", kCellSize);
  json->Key("eps_values");
  json->BeginArray();
  for (double eps : kEpsValues) json->Double(eps);
  json->EndArray();
  json->Key("cities");
  json->BeginArray();
  bool all_faster = true;
  for (const CityRun& run : runs) {
    json->BeginObject();
    json->KeyValue("city", run.city);
    json->KeyValue("cold_build_seconds", run.cold_build_seconds);
    json->KeyValue("save_seconds", run.save_seconds);
    json->KeyValue("load_seconds", run.load_seconds);
    json->KeyValue("speedup_vs_cold_build", run.speedup);
    json->KeyValue("snapshot_bytes", run.snapshot_bytes);
    json->Key("sections");
    json->BeginArray();
    for (const SnapshotSectionInfo& section : run.info.sections) {
      json->BeginObject();
      json->KeyValue("name", section.name);
      json->KeyValue("bytes", section.bytes);
      json->EndObject();
    }
    json->EndArray();
    json->KeyValue("load_faster_than_cold",
                   run.load_seconds < run.cold_build_seconds);
    json->EndObject();
    all_faster = all_faster && run.load_seconds < run.cold_build_seconds;
  }
  json->EndArray();
  json->KeyValue("all_loads_faster_than_cold", all_faster);
  out.Close();

  if (!all_faster) {
    std::cerr << "warm start failed its bar: snapshot load was not "
                 "strictly faster than the cold build\n";
    return 1;
  }
  std::cout << "\nwrote BENCH_soi_warm_start.json\n";
  return 0;
}
