#ifndef SOI_BENCH_BENCH_UTIL_H_
#define SOI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "datagen/city_profile.h"
#include "datagen/dataset.h"

namespace soi {
namespace bench_util {

/// Shared knobs of the experiment harnesses. Every bench binary accepts:
///   --scale=<0..1>   dataset scale relative to the paper's Table 1 sizes
///                    (default 0.1: full sweeps in seconds)
///   --cities=London,Berlin,Vienna   subset of cities to run
struct BenchOptions {
  double scale = 0.1;
  std::vector<std::string> cities = {"London", "Berlin", "Vienna"};
};

inline BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      auto value = ParseDouble(arg.substr(8));
      SOI_CHECK(value.ok() && value.ValueOrDie() > 0 &&
                value.ValueOrDie() <= 1)
          << "--scale must be in (0, 1]";
      options.scale = value.ValueOrDie();
    } else if (arg.rfind("--cities=", 0) == 0) {
      options.cities = Split(arg.substr(9), ',');
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Passed through to google-benchmark binaries.
    } else {
      std::cerr << "unknown flag: " << arg
                << " (supported: --scale=, --cities=)\n";
      std::exit(2);
    }
  }
  return options;
}

/// One city's generated dataset plus its offline index suite.
struct CityContext {
  CityProfile profile;
  Dataset dataset;
  std::unique_ptr<DatasetIndexes> indexes;
  double index_build_seconds = 0.0;
};

/// Generates (deterministically) the requested cities at the requested
/// scale and builds their indices with grid cell size `cell_size`.
std::vector<std::unique_ptr<CityContext>> LoadCities(
    const BenchOptions& options, double cell_size = 0.0005);

/// The accumulated Table 4 query keyword sets: the first `count` of
/// {religion, education, food, services}, resolved in the dataset's
/// vocabulary.
KeywordSet AccumulatedQueryKeywords(const Dataset& dataset, int count);

/// The one machine-readable results writer shared by the experiment
/// drivers (Figure 4/5/6, throughput): streams the standard BENCH_*.json
/// envelope
///
///   {"benchmark": <name>, "scale": <--scale>, "cities_requested": [...],
///    "build_info": {git_describe, compiler, cxx_flags, build_type,
///                   hardware_threads, timestamp_utc},
///    <caller-written fields>, "metrics": <global metrics snapshot>}
///
/// The constructor opens the file and writes the header fields; the
/// caller adds its payload through json() (which is positioned inside
/// the root object); Close() appends the metrics-registry snapshot
/// (counters, gauges, per-phase latency histograms — empty sections
/// under SOI_OBSERVABILITY=OFF) and closes the document.
class BenchJsonFile {
 public:
  BenchJsonFile(const std::string& benchmark, const BenchOptions& options,
                const std::string& path);
  ~BenchJsonFile();

  BenchJsonFile(const BenchJsonFile&) = delete;
  BenchJsonFile& operator=(const BenchJsonFile&) = delete;

  /// The underlying writer, inside the root object: add payload with
  /// Key()/KeyValue()/containers.
  JsonWriter* json() { return &json_; }

  /// Embeds the metrics snapshot, closes the root object, flushes, and
  /// checks the file wrote cleanly. Must be called exactly once.
  void Close();

 private:
  std::string path_;
  std::ofstream file_;
  JsonWriter json_;
  bool closed_ = false;
};

}  // namespace bench_util
}  // namespace soi

#endif  // SOI_BENCH_BENCH_UTIL_H_
