// Reproduces Table 3 / Section 5.1.2 of the paper: objective scores
// (Equation 2, lambda = w = 0.5, after normalization by the ST_Rel+Div
// score) of the nine photo-selection techniques on the top SOI of each
// city. The paper's shape: ST_Rel+Div is 1.000 and the highest everywhere,
// with margins up to 4.5x and no consistent runner-up.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/diversify/variants.h"
#include "core/soi_algorithm.h"
#include "core/street_photos.h"
#include "eval/table_printer.h"

namespace soi {
namespace {

int Run(int argc, char** argv) {
  bench_util::BenchOptions options =
      bench_util::ParseBenchOptions(argc, argv);
  auto cities = bench_util::LoadCities(options);

  DiversifyParams params;
  params.k = 3;          // The 3-photo summaries of Figure 3.
  params.lambda = 0.5;   // The paper's evaluation setting.
  params.w = 0.5;
  params.rho = 0.0001;
  double eps = 0.0005;

  // scores[method][city]
  std::vector<std::vector<double>> scores(
      AllSelectionMethods().size());
  std::vector<std::string> city_names;

  for (const auto& city : cities) {
    const Dataset& dataset = city->dataset;
    city_names.push_back(city->profile.name);

    // Top SOI for "shop".
    SoiQuery query;
    query.keywords = KeywordSet({dataset.vocabulary.Find("shop")});
    query.k = 1;
    query.eps = eps;
    EpsAugmentedMaps maps(city->indexes->segment_cells, eps);
    SoiAlgorithm algorithm(dataset.network, city->indexes->poi_grid,
                           city->indexes->global_index);
    SoiResult result = algorithm.TopK(query, maps);
    SOI_CHECK(!result.streets.empty());
    StreetId top = result.streets[0].street;

    StreetPhotos sp = ExtractStreetPhotos(dataset.network, top,
                                          dataset.photos,
                                          city->indexes->photo_grid, eps);
    SOI_CHECK(sp.size() > params.k)
        << city->profile.name << ": top SOI has too few photos";
    PhotoScorer scorer(sp, params.rho);

    double full_score = 0.0;
    std::vector<double> city_scores;
    for (SelectionMethod method : AllSelectionMethods()) {
      DiversifyResult selection = SelectWithMethod(scorer, method, params);
      double score = scorer.Objective(selection.selected, params);
      city_scores.push_back(score);
      if (method == SelectionMethod::kStRelDiv) full_score = score;
    }
    SOI_CHECK(full_score > 0);
    for (size_t m = 0; m < city_scores.size(); ++m) {
      scores[m].push_back(city_scores[m] / full_score);
    }
  }

  std::cout << "\nTable 3: Objective scores (Eq. 2, lambda=w=0.5), "
               "normalized by ST_Rel+Div\n\n";
  std::vector<std::string> headers = {"Method"};
  for (const std::string& name : city_names) headers.push_back(name);
  TablePrinter table(headers);
  for (size_t m = 0; m < AllSelectionMethods().size(); ++m) {
    std::vector<std::string> row = {
        SelectionMethodName(AllSelectionMethods()[m])};
    for (double score : scores[m]) row.push_back(FormatDouble(score, 3));
    table.AddRow(std::move(row));
  }
  table.Print(&std::cout);
  std::cout << "\nPaper (London/Berlin/Vienna): S_Rel .831/.726/.508, "
               "T_Rel .708/.367/.219, ST_Rel+Div 1.000 everywhere\n";
  return 0;
}

}  // namespace
}  // namespace soi

int main(int argc, char** argv) { return soi::Run(argc, argv); }
